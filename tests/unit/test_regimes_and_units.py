"""Cooling regime/command validation and cooling unit behavior."""

import pytest

from repro import constants
from repro.cooling.regimes import (
    CoolingCommand,
    CoolingMode,
    all_regime_keys,
    regime_key,
)
from repro.cooling.units import (
    AbruptCoolingUnits,
    SmoothCoolingUnits,
    free_cooling_power_w,
)
from repro.errors import RegimeError


class TestCoolingCommand:
    def test_closed_rejects_actuators(self):
        with pytest.raises(RegimeError):
            CoolingCommand(mode=CoolingMode.CLOSED, fc_fan_speed=0.5)

    def test_free_cooling_requires_fan(self):
        with pytest.raises(RegimeError):
            CoolingCommand(mode=CoolingMode.FREE_COOLING)

    def test_free_cooling_excludes_ac(self):
        with pytest.raises(RegimeError):
            CoolingCommand(
                mode=CoolingMode.FREE_COOLING, fc_fan_speed=0.5, ac_fan_speed=0.5
            )

    def test_ac_on_requires_fan_and_compressor(self):
        with pytest.raises(RegimeError):
            CoolingCommand(mode=CoolingMode.AC_ON, ac_fan_speed=1.0)

    def test_constructors(self):
        assert CoolingCommand.closed().mode is CoolingMode.CLOSED
        assert CoolingCommand.free_cooling(0.3).fc_fan_speed == 0.3
        assert CoolingCommand.ac(1.0).mode is CoolingMode.AC_ON
        assert CoolingCommand.ac(0.0).mode is CoolingMode.AC_FAN

    def test_range_validation(self):
        with pytest.raises(RegimeError):
            CoolingCommand.free_cooling(1.5)


class TestRegimeKeys:
    def test_steady_key(self):
        key = regime_key(CoolingMode.CLOSED, CoolingMode.CLOSED)
        assert key == "steady:closed"

    def test_transition_key(self):
        key = regime_key(CoolingMode.CLOSED, CoolingMode.FREE_COOLING)
        assert key == "transition:closed->free_cooling"

    def test_all_keys_cover_modes_and_transitions(self):
        keys = all_regime_keys()
        assert len(keys) == 4 + 4 * 3
        assert len(set(keys)) == len(keys)


class TestFreeCoolingPower:
    def test_endpoints(self):
        assert free_cooling_power_w(0.0) == 0.0
        # Minimum operating speed draws near the minimum power.
        assert free_cooling_power_w(1.0) == pytest.approx(constants.FC_MAX_POWER_W)

    def test_cubic_shape(self):
        # Half speed should cost far less than half of max power.
        assert free_cooling_power_w(0.5) < 0.2 * constants.FC_MAX_POWER_W

    def test_monotonic(self):
        speeds = [0.15, 0.3, 0.5, 0.75, 1.0]
        powers = [free_cooling_power_w(s) for s in speeds]
        assert powers == sorted(powers)

    def test_rejects_out_of_range(self):
        with pytest.raises(RegimeError):
            free_cooling_power_w(1.2)


class TestAbruptUnits:
    def test_fc_clamps_to_min_speed(self):
        units = AbruptCoolingUnits()
        units.apply(CoolingCommand.free_cooling(0.05))
        assert units.fc_fan_speed == constants.FC_MIN_SPEED

    def test_ac_compressor_is_on_off(self):
        units = AbruptCoolingUnits()
        units.apply(CoolingCommand.ac(compressor_duty=1.0))
        assert units.ac_compressor_duty == 1.0
        assert units.ac_fan_speed == 1.0
        assert units.power_w() == constants.AC_COMPRESSOR_W

    def test_ac_fan_only_power(self):
        units = AbruptCoolingUnits()
        units.apply(CoolingCommand.ac(compressor_duty=0.0))
        assert units.power_w() == constants.AC_FAN_ONLY_W

    def test_closed_draws_nothing(self):
        units = AbruptCoolingUnits()
        units.apply(CoolingCommand.closed())
        assert units.power_w() == 0.0
        assert units.mode is CoolingMode.CLOSED

    def test_mode_property(self):
        units = AbruptCoolingUnits()
        units.apply(CoolingCommand.free_cooling(0.5))
        assert units.mode is CoolingMode.FREE_COOLING
        units.apply(CoolingCommand.ac(1.0))
        assert units.mode is CoolingMode.AC_ON


class TestSmoothUnits:
    def test_fan_starts_at_1pct(self):
        units = SmoothCoolingUnits(ramp_per_step=0.2)
        units.apply(CoolingCommand.free_cooling(0.01))
        assert units.fc_fan_speed == pytest.approx(0.01)

    def test_ramp_up_is_limited(self):
        units = SmoothCoolingUnits(ramp_per_step=0.2)
        units.apply(CoolingCommand.free_cooling(1.0))
        first = units.fc_fan_speed
        assert first <= 0.21  # starts small, ramps
        units.apply(CoolingCommand.free_cooling(1.0))
        assert units.fc_fan_speed > first

    def test_ramp_down_within_range_is_immediate(self):
        units = SmoothCoolingUnits(ramp_per_step=0.2)
        for _ in range(6):
            units.apply(CoolingCommand.free_cooling(1.0))
        units.apply(CoolingCommand.free_cooling(0.3))
        assert units.fc_fan_speed == pytest.approx(0.3)

    def test_shutdown_is_immediate(self):
        units = SmoothCoolingUnits()
        units.apply(CoolingCommand.free_cooling(0.15))
        units.apply(CoolingCommand.closed())
        assert units.fc_fan_speed == 0.0

    def test_variable_compressor_duty(self):
        units = SmoothCoolingUnits(ramp_per_step=1.0)
        units.apply(CoolingCommand.ac(compressor_duty=0.5))
        assert units.ac_compressor_duty == pytest.approx(0.5)

    def test_smooth_ac_power_model(self):
        units = SmoothCoolingUnits(ramp_per_step=1.0)
        units.apply(CoolingCommand.ac(compressor_duty=1.0, fan_speed=1.0))
        assert units.power_w() == pytest.approx(constants.AC_COMPRESSOR_W)
        units.apply(CoolingCommand.ac(compressor_duty=0.5, fan_speed=1.0))
        expected = constants.AC_COMPRESSOR_W / 4 + 0.5 * (
            constants.AC_COMPRESSOR_W * 3 / 4
        )
        assert units.power_w() == pytest.approx(expected)

    def test_rejects_bad_ramp(self):
        with pytest.raises(RegimeError):
            SmoothCoolingUnits(ramp_per_step=0.0)
