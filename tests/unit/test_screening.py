"""Screening pipeline tests: clustering, surrogate, cost model, serving.

The contract under test (see :mod:`repro.analysis.screening`):

* clustering is deterministic and partitions the grid;
* the cost model's estimate and budgets follow its documented EMA;
* the policy validates and round-trips through JSON;
* cluster-served metrics never move more than the documented
  :data:`CORRECTION_BOUNDS` from their representative's simulated value
  (property-tested over random grids);
* provenance counters always sum to the grid size.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.screening import (
    CORRECTION_BOUNDS,
    METRIC_NAMES,
    PROVENANCE_CLUSTER,
    PROVENANCE_SIMULATED,
    PROVENANCE_SURROGATE,
    ClimateCluster,
    CostModel,
    ScreeningCounters,
    ScreeningPolicy,
    ScreeningSession,
    WorldSurrogate,
    climate_features,
    cluster_climates,
    cluster_to_budget,
    feature_matrix,
    resolve_screen,
)
from repro.analysis.worldmap import StreamingWorldAccumulator
from repro.errors import ReproError
from repro.weather.climate import Climate


def climate(
    name,
    mean=18.0,
    seasonal=8.0,
    diurnal=6.0,
    synoptic=3.0,
    rh=60.0,
    rh_diurnal=12.0,
    lat=40.0,
    lon=0.0,
):
    return Climate(
        name=name,
        latitude=lat,
        longitude=lon,
        mean_temp_c=mean,
        seasonal_amplitude_c=seasonal,
        diurnal_amplitude_c=diurnal,
        synoptic_std_c=synoptic,
        mean_rh_pct=rh,
        diurnal_rh_amplitude_pct=rh_diurnal,
    )


def spread_grid(n, step=2.5):
    """n climates spread far enough apart to resist clustering."""
    return [
        climate(f"c{i}", mean=5.0 + step * i, lon=-150.0 + 3.0 * i)
        for i in range(n)
    ]


class TestResolveScreen:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCREEN", raising=False)
        assert resolve_screen() == "off"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCREEN", "on")
        assert resolve_screen() == "on"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCREEN", "on")
        assert resolve_screen("off") == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            resolve_screen("auto")


class TestClimateFeatures:
    def test_feature_vector_shape(self):
        vec = climate_features(climate("x"))
        # Six scaled parameters plus the hemisphere indicator.
        assert vec.shape == (7,)

    def test_hemisphere_indicator(self):
        north = climate_features(climate("n", lat=40.0))
        south = climate_features(climate("s", lat=-40.0))
        assert north[-1] == 0.0
        assert south[-1] == 1.0

    def test_scaling(self):
        vec = climate_features(climate("x", mean=20.0))
        assert vec[0] == pytest.approx(2.0)  # mean_temp_c / 10

    def test_matrix_stacks_rows(self):
        grid = spread_grid(5)
        mat = feature_matrix(grid)
        assert mat.shape == (5, 7)
        assert np.array_equal(mat[2], climate_features(grid[2]))


class TestClusterClimates:
    def test_bad_tolerance(self):
        with pytest.raises(ReproError):
            cluster_climates(np.zeros((3, 2)), tol=0.0)

    def test_identical_points_one_cluster(self):
        features = np.zeros((6, 3))
        clusters = cluster_climates(features, tol=0.1)
        assert len(clusters) == 1
        assert clusters[0].representative == 0
        assert set(clusters[0].members) == {1, 2, 3, 4, 5}

    def test_partition_covers_every_index(self):
        rng = np.random.default_rng(7)
        features = rng.normal(size=(40, 4))
        clusters = cluster_climates(features, tol=1.0, seed=3)
        seen = []
        for c in clusters:
            seen.append(c.representative)
            seen.extend(c.members)
        assert sorted(seen) == list(range(40))

    def test_deterministic_for_same_seed(self):
        rng = np.random.default_rng(11)
        features = rng.normal(size=(30, 3))
        first = cluster_climates(features, tol=0.8, seed=5)
        second = cluster_climates(features, tol=0.8, seed=5)
        assert first == second

    def test_seed_zero_visits_in_grid_order(self):
        # Two tight groups: with grid order, index 0 and the first point
        # of the second group become the representatives.
        features = np.array(
            [[0.0, 0.0], [0.01, 0.0], [5.0, 0.0], [5.01, 0.0]]
        )
        clusters = cluster_climates(features, tol=0.1, seed=0)
        assert [c.representative for c in clusters] == [0, 2]

    def test_member_distances_align(self):
        features = np.array([[0.0, 0.0], [0.06, 0.08]])
        (cluster,) = cluster_climates(features, tol=0.2)
        assert cluster.members == (1,)
        assert cluster.distances[0] == pytest.approx(0.1)

    def test_clusters_sorted_by_representative(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(25, 3))
        clusters = cluster_climates(features, tol=0.5, seed=9)
        reps = [c.representative for c in clusters]
        assert reps == sorted(reps)


class TestClusterToBudget:
    def test_coarsens_until_budget_fits(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(50, 3))
        clusters, tol = cluster_to_budget(features, 0.05, 5)
        assert len(clusters) <= 5
        assert tol > 0.05

    def test_keeps_tol_when_already_under_budget(self):
        features = np.zeros((10, 2))
        clusters, tol = cluster_to_budget(features, 0.3, 4)
        assert len(clusters) == 1
        assert tol == 0.3

    def test_bad_budget(self):
        with pytest.raises(ReproError):
            cluster_to_budget(np.zeros((3, 2)), 0.1, 0)


class TestWorldSurrogate:
    def linear_metrics(self, features):
        base_range = 6.0 + 3.0 * features[:, 0] + features[:, 1]
        return np.vstack(
            [
                base_range,
                base_range - 4.0,
                1.05 + 0.01 * features[:, 0],
                1.06 + 0.005 * features[:, 0],
                0.8 + 0.1 * features[:, 1],
                0.7 + 0.05 * features[:, 1],
            ]
        )

    def test_stays_unfit_below_minimum_samples(self):
        features = np.random.default_rng(0).normal(size=(5, 7))
        surrogate = WorldSurrogate().fit(features, np.ones((6, 5)))
        assert not surrogate.is_fit
        widths = surrogate.interval_widths(features)
        assert all(np.isinf(w).all() for w in widths.values())

    def test_unfit_predict_raises(self):
        with pytest.raises(ReproError):
            WorldSurrogate().predict(np.zeros((1, 7)))

    def test_recovers_linear_metrics(self):
        rng = np.random.default_rng(3)
        features = rng.uniform(-1.0, 1.0, size=(30, 2))
        surrogate = WorldSurrogate().fit(features, self.linear_metrics(features))
        assert surrogate.is_fit
        probe = np.array([[0.25, -0.5]])
        predicted = surrogate.predict(probe)
        truth = self.linear_metrics(probe)
        for row, metric in enumerate(METRIC_NAMES):
            assert predicted[metric][0] == pytest.approx(
                truth[row, 0], abs=1e-6
            )

    def test_intervals_widen_with_distance(self):
        rng = np.random.default_rng(4)
        features = rng.uniform(-1.0, 1.0, size=(30, 2))
        surrogate = WorldSurrogate().fit(features, self.linear_metrics(features))
        near = surrogate.interval_widths(features[:1])
        far = surrogate.interval_widths(np.array([[8.0, 8.0]]))
        for metric in METRIC_NAMES:
            assert far[metric][0] > near[metric][0]


class TestCostModel:
    def test_prior_before_observations(self):
        model = CostModel(prior_s_per_cell=0.7)
        assert not model.calibrated
        assert model.seconds_per_cell == 0.7

    def test_ema_update(self):
        model = CostModel(alpha=0.5)
        model.observe(1, 1.0)
        assert model.calibrated
        assert model.seconds_per_cell == pytest.approx(1.0)
        model.observe(1, 3.0)
        assert model.seconds_per_cell == pytest.approx(2.0)

    def test_ignores_empty_or_negative_batches(self):
        model = CostModel()
        model.observe(0, 10.0)
        model.observe(4, -1.0)
        assert not model.calibrated

    def test_suggested_lanes_targets_chunk_duration(self):
        model = CostModel(target_chunk_s=4.0)
        model.observe(10, 5.0)  # 0.5 s/cell
        assert model.suggested_lanes() == 8

    def test_suggested_lanes_clamped(self):
        fast = CostModel(target_chunk_s=4.0)
        fast.observe(1000, 0.1)
        assert fast.suggested_lanes() == 32
        slow = CostModel(target_chunk_s=4.0)
        slow.observe(1, 100.0)
        assert slow.suggested_lanes() == 1

    def test_affordable_cells(self):
        model = CostModel()
        model.observe(10, 5.0)
        assert model.affordable_cells(None) is None
        assert model.affordable_cells(10.0) == 20
        assert model.affordable_cells(0.0) == 0

    def test_validation(self):
        with pytest.raises(ReproError):
            CostModel(target_chunk_s=0.0)
        with pytest.raises(ReproError):
            CostModel(alpha=0.0)

    def test_snapshot_keys(self):
        snap = CostModel().snapshot()
        assert set(snap) == {
            "seconds_per_cell",
            "observed_cells",
            "observed_seconds",
            "suggested_lanes",
        }


class TestScreeningPolicy:
    def test_budget_floor_and_fraction(self):
        policy = ScreeningPolicy(
            max_simulated_fraction=0.1, min_simulated_locations=8
        )
        assert policy.simulate_budget(50) == 8  # floor wins
        assert policy.simulate_budget(200) == 20  # ceil(0.1 * 200)
        assert policy.simulate_budget(4) == 4  # capped at the grid

    def test_validation(self):
        with pytest.raises(ReproError):
            ScreeningPolicy(cluster_tol=0.0)
        with pytest.raises(ReproError):
            ScreeningPolicy(serve_radius=-1.0)
        with pytest.raises(ReproError):
            ScreeningPolicy(max_simulated_fraction=0.0)
        with pytest.raises(ReproError):
            ScreeningPolicy(min_simulated_locations=1)

    def test_json_roundtrip(self):
        policy = ScreeningPolicy(cluster_tol=0.2, min_simulated_locations=4)
        assert ScreeningPolicy.from_json(policy.to_json()) == policy

    def test_from_json_defaults_and_partial(self):
        assert ScreeningPolicy.from_json(None) == ScreeningPolicy()
        partial = ScreeningPolicy.from_json({"serve_radius": 0.3})
        assert partial.serve_radius == 0.3
        assert partial.cluster_tol == ScreeningPolicy().cluster_tol

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ReproError):
            ScreeningPolicy.from_json({"clusterTol": 0.1})


class TestScreeningCounters:
    def test_total_and_json(self):
        counters = ScreeningCounters(3, 2, 5)
        assert counters.total == 10
        assert counters.to_json() == {
            "simulated": 3,
            "served_from_cluster": 2,
            "surrogate_only": 5,
        }


# -- the session against a real accumulator -----------------------------------


class FakeResult:
    def __init__(self, max_range_c, pue, wue=0.0):
        self.max_range_c = max_range_c
        self.pue = pue
        self.wue = wue


def ground_truth(features):
    """Linear world metrics a surrogate can learn exactly."""
    base_range = 8.0 + 3.0 * features[0] + 1.5 * features[1]
    return {
        "baseline_max_range_c": base_range,
        "coolair_max_range_c": max(0.0, base_range - 4.0),
        "baseline_pue": 1.06 + 0.01 * features[0],
        "coolair_pue": 1.07 + 0.005 * features[0],
        "baseline_wue": 1.0 + 0.05 * features[1],
        "coolair_wue": 0.9 + 0.04 * features[1],
    }


def simulate_tasks(session, accumulator, tasks):
    """Feed fake-but-consistent results for the given tasks."""
    for task in tasks:
        truth = ground_truth(climate_features(task.climate))
        if task.system == "baseline":
            result = FakeResult(
                truth["baseline_max_range_c"],
                truth["baseline_pue"],
                truth["baseline_wue"],
            )
        else:
            result = FakeResult(
                truth["coolair_max_range_c"],
                truth["coolair_pue"],
                truth["coolair_wue"],
            )
        accumulator.consume(0, task, result)


def run_session(grid, policy):
    session = ScreeningSession(grid, policy=policy)
    accumulator = StreamingWorldAccumulator(grid, "All-ND")
    simulate_tasks(session, accumulator, session.representative_tasks())
    simulate_tasks(
        session, accumulator, session.uncertain_tasks(accumulator)
    )
    counters = session.serve(accumulator)
    return session, accumulator, counters


class TestScreeningSession:
    POLICY = ScreeningPolicy(
        max_simulated_fraction=0.3, min_simulated_locations=4
    )

    def test_empty_grid_rejected(self):
        with pytest.raises(ReproError):
            ScreeningSession([])

    def test_phase_discipline(self):
        grid = spread_grid(10)
        session = ScreeningSession(grid, policy=self.POLICY)
        accumulator = StreamingWorldAccumulator(grid, "All-ND")
        assert session.phase == 1
        simulate_tasks(session, accumulator, session.representative_tasks())
        session.uncertain_tasks(accumulator)
        assert session.phase == 2
        with pytest.raises(ReproError):
            session.uncertain_tasks(accumulator)
        session.serve(accumulator)
        assert session.phase == 3
        with pytest.raises(ReproError):
            session.serve(accumulator)

    def test_counters_sum_to_grid_size(self):
        grid = spread_grid(20)
        _, _, counters = run_session(grid, self.POLICY)
        assert counters.total == len(grid)

    def test_budget_bounds_simulated_locations(self):
        grid = spread_grid(20)
        session, _, counters = run_session(grid, self.POLICY)
        assert counters.simulated == session.simulated_locations
        assert session.simulated_locations <= self.POLICY.simulate_budget(
            len(grid)
        )

    def test_representative_tasks_pair_systems(self):
        grid = spread_grid(10)
        session = ScreeningSession(grid, policy=self.POLICY)
        tasks = session.representative_tasks()
        assert len(tasks) == 2 * len(session.clusters)
        assert [t.system for t in tasks[:2]] == ["baseline", "All-ND"]

    def test_serve_never_overwrites_simulated(self):
        grid = spread_grid(12)
        session, accumulator, _ = run_session(grid, self.POLICY)
        rep = session.clusters[0].representative
        name = grid[rep].name
        truth = ground_truth(climate_features(grid[rep]))
        metrics = accumulator.location_metrics(name)
        for row, metric in enumerate(METRIC_NAMES):
            assert metrics[row] == pytest.approx(truth[metric])

    def test_every_location_resolves_with_healthy_reps(self):
        grid = spread_grid(20)
        _, accumulator, _ = run_session(grid, self.POLICY)
        assert accumulator.resolved_locations() == len(grid)

    def test_serve_from_phase_one_is_legal(self):
        grid = spread_grid(10)
        session = ScreeningSession(grid, policy=self.POLICY)
        accumulator = StreamingWorldAccumulator(grid, "All-ND")
        simulate_tasks(session, accumulator, session.representative_tasks())
        counters = session.serve(accumulator)
        assert counters.total == len(grid)

    def test_failed_representative_leaves_location_missing(self):
        # Two far-apart tight pairs; one representative never lands and
        # the surrogate cannot fit on a single point, so its member
        # stays unresolved — like a failed cell on the exhaustive path.
        grid = [
            climate("a0", mean=5.0),
            climate("a1", mean=5.01),
            climate("b0", mean=35.0),
            climate("b1", mean=35.01),
        ]
        policy = ScreeningPolicy(
            cluster_tol=0.05,
            serve_radius=0.05,
            max_simulated_fraction=0.5,
            min_simulated_locations=2,
        )
        session = ScreeningSession(grid, policy=policy)
        accumulator = StreamingWorldAccumulator(grid, "All-ND")
        tasks = session.representative_tasks()
        # Only the first cluster's representative lands.
        simulate_tasks(
            session, accumulator, [t for t in tasks if t.climate.name == "a0"]
        )
        session.uncertain_tasks(accumulator)
        counters = session.serve(accumulator)
        assert counters.total < len(grid)
        assert accumulator.location_metrics("b1") is None

    def test_cost_model_budget_tightens_promotions(self):
        grid = spread_grid(20)
        policy = ScreeningPolicy(
            max_simulated_fraction=0.5,
            min_simulated_locations=4,
            simulate_budget_s=0.0,
        )
        session = ScreeningSession(grid, policy=policy)
        accumulator = StreamingWorldAccumulator(grid, "All-ND")
        simulate_tasks(session, accumulator, session.representative_tasks())
        # Zero wall-clock budget: nothing can be promoted.
        assert session.uncertain_tasks(accumulator) == []


class TestCorrectionBoundProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        means=st.lists(
            st.floats(min_value=-10.0, max_value=35.0),
            min_size=6,
            max_size=24,
        ),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_cluster_served_within_documented_bounds(self, means, seed):
        grid = [
            climate(f"h{i}", mean=m, seasonal=4.0 + (i % 3))
            for i, m in enumerate(means)
        ]
        policy = ScreeningPolicy(
            cluster_tol=0.5,
            serve_radius=0.5,
            max_simulated_fraction=0.5,
            min_simulated_locations=2,
            seed=seed,
        )
        session, accumulator, _ = run_session(grid, policy)
        summary = accumulator.summary(partial=True)
        by_name = {c.name: c for c in summary.comparisons}
        for index, climate_obj in enumerate(grid):
            comparison = by_name.get(climate_obj.name)
            if comparison is None:
                continue
            if comparison.provenance != PROVENANCE_CLUSTER:
                continue
            rep = session._rep_of[index]
            rep_metrics = accumulator.location_metrics(grid[rep].name)
            served = accumulator.location_metrics(climate_obj.name)
            for row, metric in enumerate(METRIC_NAMES):
                bound = CORRECTION_BOUNDS[metric]
                assert abs(served[row] - rep_metrics[row]) <= bound + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_provenance_partition(self, seed):
        rng = np.random.default_rng(seed)
        grid = [
            climate(f"p{i}", mean=float(rng.uniform(-5, 30)))
            for i in range(12)
        ]
        policy = ScreeningPolicy(
            max_simulated_fraction=0.4, min_simulated_locations=2
        )
        _, accumulator, counters = run_session(grid, policy)
        assert counters.total == len(grid)
        counts = accumulator.provenance_counts()
        assert counts.get(PROVENANCE_SIMULATED, 0) == counters.simulated
        assert (
            counts.get(PROVENANCE_CLUSTER, 0) == counters.served_from_cluster
        )
        assert (
            counts.get(PROVENANCE_SURROGATE, 0) == counters.surrogate_only
        )
