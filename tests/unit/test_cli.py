"""CLI tests (fast subcommands only; day/year are covered by integration
tests through the same code paths)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["year"])
        assert args.location == "Newark"
        assert args.system == "All-ND"
        assert args.sample_days == 14
        assert args.no_cache is False

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["day", "--system", "bogus"])

    def test_matrix_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.systems.split(",") == [
            "baseline", "Temperature", "Energy", "Variation", "All-ND",
        ]
        assert args.workers is None
        assert args.sample_days is None

    def test_world_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.locations == 24
        assert args.workers is None

    def test_matrix_workers_flag(self):
        args = build_parser().parse_args(["matrix", "--workers", "4"])
        assert args.workers == 4

    def test_world_screening_flags(self):
        args = build_parser().parse_args(
            ["world", "--grid-points", "5000", "--screen", "on", "--map",
             "--map-metric", "pue"]
        )
        assert args.grid_points == 5000
        assert args.screen == "on"
        assert args.map is True and args.map_metric == "pue"

    def test_world_screen_defaults_to_env_resolution(self):
        args = build_parser().parse_args(["world"])
        # None lets resolve_screen apply REPRO_SCREEN, then "off".
        assert args.screen is None
        assert args.grid_points is None and args.map is False

    def test_world_rejects_unknown_screen_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["world", "--screen", "auto"])

    def test_submit_world_screening_flags(self):
        args = build_parser().parse_args(
            ["submit", "world", "--grid-points", "120", "--screen", "on"]
        )
        assert args.grid_points == 120 and args.screen == "on"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.socket is None and args.host is None and args.port is None
        assert args.workers is None and args.max_inflight is None
        assert args.max_jobs is None

    def test_submit_matrix_defaults(self):
        args = build_parser().parse_args(["submit", "matrix"])
        assert args.kind == "matrix"
        assert args.priority == 0
        assert args.no_wait is False and args.json is False
        assert "baseline" in args.systems.split(",")

    def test_submit_world_flags(self):
        args = build_parser().parse_args(
            ["submit", "world", "--locations", "6", "--priority", "3",
             "--socket", "/tmp/x.sock"]
        )
        assert args.locations == 6 and args.priority == 3
        assert args.socket == "/tmp/x.sock"

    def test_submit_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "bogus"])

    def test_status_job_id_is_optional(self):
        assert build_parser().parse_args(["status"]).job_id is None
        args = build_parser().parse_args(["status", "job-0001", "--result"])
        assert args.job_id == "job-0001" and args.result is True

    def test_cancel_requires_job_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cancel"])
        assert build_parser().parse_args(["cancel", "job-0001"]).job_id == (
            "job-0001"
        )


class TestCommandCatalogue:
    """The docstring/epilog/dispatch table cannot drift apart."""

    def test_summaries_cover_exactly_the_dispatch_table(self):
        from repro.cli import COMMANDS, COMMAND_SUMMARIES

        assert set(COMMAND_SUMMARIES) == set(COMMANDS)

    def test_epilog_lists_every_command(self):
        from repro.cli import COMMAND_SUMMARIES

        epilog = build_parser().epilog
        for name in COMMAND_SUMMARIES:
            assert name in epilog

    def test_module_docstring_lists_every_command(self):
        import repro.cli as cli

        for name in cli.COMMAND_SUMMARIES:
            assert f"``{name}``" in cli.__doc__


class TestFastCommands:
    def test_versions(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "All-ND" in out and "Energy-DEF" in out

    def test_locations(self, capsys):
        assert main(["locations"]) == 0
        out = capsys.readouterr().out
        assert "Singapore" in out and "Iceland" in out

    def test_band(self, capsys):
        assert main(["band", "--location", "Newark", "--day", "182"]) == 0
        out = capsys.readouterr().out
        assert "band: [" in out

    def test_band_rejects_baseline(self, capsys):
        assert main(["band", "--system", "baseline"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_location_is_clean_error(self, capsys):
        assert main(["band", "--location", "Atlantis"]) == 2
        err = capsys.readouterr().err
        assert "Atlantis" in err

    def test_matrix_unknown_system_is_clean_error(self, capsys):
        assert main(["matrix", "--systems", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_matrix_bad_worker_count_is_clean_error(self, capsys):
        assert main(["matrix", "--workers", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err


class TestDayCommand:
    def test_baseline_day(self, capsys):
        assert main([
            "day", "--system", "baseline", "--location", "Iceland",
            "--day", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "PUE" in out and "range" in out

    def test_coolair_day(self, capsys, cooling_model):
        # trained_cooling_model() is cached by the session fixture, so
        # this exercises the full CoolAir path quickly.
        assert main(["day", "--system", "All-ND", "--day", "100"]) == 0
        assert "All-ND" in capsys.readouterr().out
