"""Benchmark harness tests (``python -m repro bench``).

The quick suite is what CI's bench-smoke step runs; these tests pin the
report schema, the baseline comparison arithmetic, and the CLI wiring.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import profiling
from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestQuickSuite:
    def test_run_bench_quick(self, cooling_model):
        results = profiling.run_bench(quick=True, model=cooling_model)
        assert set(results) == {
            "plant_step", "optimizer_decision", "day_sim", "world_chunk",
            "plant_world_chunk", "year_unfold", "world_100k",
        }
        for result in results.values():
            assert result["median_s"] > 0.0
        assert results["plant_step"]["steps_per_s"] > 0.0
        assert results["optimizer_decision"]["decision_latency_ms"] > 0.0
        # The quick world chunk is one climate x {baseline, All-ND}.
        assert results["world_chunk"]["lanes"] == 2
        assert results["world_chunk"]["s_per_lane"] > 0.0
        # The plant chunk runs the same shape on the non-parasol lanes.
        assert results["plant_world_chunk"]["lanes"] == 2
        assert results["plant_world_chunk"]["s_per_lane"] > 0.0
        # The unfolded year runs at the same shape the baseline recorded,
        # so --check gates it even in quick mode.
        unfold = results["year_unfold"]
        assert unfold["day_lanes"] == profiling.UNFOLD_DAY_LANES
        assert unfold["sample_every_days"] == profiling.UNFOLD_STRIDE_DAYS
        assert unfold["s_per_day"] > 0.0
        # The screened sweep accounts for every grid point.
        screened = results["world_100k"]
        assert (
            screened["simulated"]
            + screened["served_from_cluster"]
            + screened["surrogate_only"]
        ) == screened["grid_points"]

    def test_write_report_and_reload(self, cooling_model, tmp_path):
        results = {"day_sim": {"median_s": 0.25, "days_per_s": 4.0}}
        out = tmp_path / "bench.json"
        payload = profiling.write_report(
            results,
            path=out,
            quick=True,
            baseline_path=REPO_ROOT / "benchmarks" / "perf" / "baseline_sim_core.json",
        )
        assert payload["schema"] == profiling.SCHEMA_VERSION
        assert json.loads(out.read_text())["results"] == results
        # The repo ships a recorded pre-PR baseline; the report must carry
        # the comparison.
        assert payload["speedup_vs_baseline"]["day_sim"] > 0.0

    def test_format_report_mentions_speedup(self):
        payload = {
            "quick": True,
            "results": {"day_sim": {"median_s": 0.2, "days_per_s": 5.0}},
            "speedup_vs_baseline": {"day_sim": 3.2},
        }
        text = profiling.format_report(payload)
        assert "day_sim" in text and "3.20x" in text

    def test_format_report_without_baseline(self):
        payload = {"results": {"day_sim": {"median_s": 0.2}}}
        assert "no recorded baseline" in profiling.format_report(payload)


class TestBaseline:
    def test_missing_baseline_is_none(self, tmp_path):
        assert profiling.load_baseline(tmp_path / "nope.json") is None

    def test_wrong_schema_is_none(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": -1, "results": {}}))
        assert profiling.load_baseline(path) is None

    def test_recorded_baseline_loads(self):
        baseline = profiling.load_baseline(
            REPO_ROOT / "benchmarks" / "perf" / "baseline_sim_core.json"
        )
        assert baseline is not None
        assert "day_sim" in baseline["results"]

    def test_speedup_arithmetic(self):
        results = {"day_sim": {"median_s": 0.25}, "extra": {"median_s": 1.0}}
        baseline = {"results": {"day_sim": {"median_s": 1.0}}}
        speedups = profiling.speedups_vs_baseline(results, baseline)
        assert speedups == {"day_sim": 4.0}
        assert profiling.speedups_vs_baseline(results, None) == {}

    def test_speedup_skips_shape_mismatches(self):
        # A full 100k world_100k run against the quick-shape baseline is
        # not a speedup or a regression — it is a different workload.
        results = {"world_100k": {
            "median_s": 134.0, "grid_points": 100_000,
            "sample_every_days": 365, "trace_jobs": 400,
        }}
        baseline = {"results": {"world_100k": {
            "median_s": 26.0, "grid_points": 240,
            "sample_every_days": 365, "trace_jobs": 400,
        }}}
        assert profiling.speedups_vs_baseline(results, baseline) == {}
        # Same shape: compared as usual.
        baseline["results"]["world_100k"]["grid_points"] = 100_000
        speedups = profiling.speedups_vs_baseline(results, baseline)
        assert speedups["world_100k"] == pytest.approx(26.0 / 134.0)


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick is True
        assert args.output == "BENCH_sim_core.json"
        assert args.profile is False

    def test_bench_quick_end_to_end(self, cooling_model, tmp_path, capsys):
        # cooling_model pre-populates the in-process campaign cache, so the
        # CLI's trained_cooling_model() call is free.
        out = tmp_path / "BENCH_sim_core.json"
        assert main(
            ["bench", "--quick", "--no-history", "--output", str(out)]
        ) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "sim-core benchmarks (quick)" in captured


class TestHistory:
    """The append-only perf log behind ``python -m repro bench``."""

    PAYLOAD = {
        "recorded_unix_s": 1700000000,
        "quick": False,
        "results": {
            "day_sim": {"median_s": 0.25, "days_per_s": 4.0},
            "world_chunk": {"median_s": 1.2, "lanes": 8},
        },
        "speedup_vs_baseline": {"day_sim": 3.4},
    }

    def test_append_writes_one_json_line_per_run(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entry = profiling.append_history(
            self.PAYLOAD, label="first", path=path
        )
        profiling.append_history(self.PAYLOAD, label="second", path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == entry
        assert first["label"] == "first"
        assert first["medians_s"] == {"day_sim": 0.25, "world_chunk": 1.2}
        assert first["speedup_vs_baseline"] == {"day_sim": 3.4}
        assert json.loads(lines[1])["label"] == "second"

    def test_entries_carry_the_git_revision(self, tmp_path):
        entry = profiling.append_history(
            self.PAYLOAD, path=tmp_path / "h.jsonl"
        )
        rev = entry["git_rev"]
        assert rev == "unknown" or all(
            c in "0123456789abcdef" for c in rev
        )

    def test_cli_passes_label_through(
        self, cooling_model, tmp_path, monkeypatch, capsys
    ):
        seen = {}
        real_append = profiling.append_history

        def fake_append(payload, label=""):
            seen["label"] = label
            return real_append(
                payload, label=label, path=tmp_path / "h.jsonl"
            )

        monkeypatch.setattr(profiling, "append_history", fake_append)
        out = tmp_path / "bench.json"
        assert main(
            ["bench", "--quick", "--output", str(out), "--label", "pr3"]
        ) == 0
        assert seen["label"] == "pr3"
        assert (tmp_path / "h.jsonl").exists()
        assert "appended run @" in capsys.readouterr().out

    def test_no_history_skips_the_log(
        self, cooling_model, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            profiling,
            "append_history",
            lambda *a, **k: pytest.fail("history written with --no-history"),
        )
        out = tmp_path / "bench.json"
        assert main(
            ["bench", "--quick", "--no-history", "--output", str(out)]
        ) == 0
        assert "appended run" not in capsys.readouterr().out

    def test_append_is_atomic_no_temp_leftovers(self, tmp_path):
        path = tmp_path / "history.jsonl"
        profiling.append_history(self.PAYLOAD, path=path)
        profiling.append_history(self.PAYLOAD, path=path)
        assert [p.name for p in tmp_path.iterdir()] == ["history.jsonl"]
        assert len(path.read_text().splitlines()) == 2

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"torn": true}')  # no trailing newline
        profiling.append_history(self.PAYLOAD, path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"torn": True}
        assert json.loads(lines[1])["quick"] is False


class TestCheckRegressions:
    """The ``bench --check`` gate against the recorded baseline."""

    def current(self, **overrides):
        results = {
            "day_sim": {"median_s": 0.25, "days_per_s": 4.0},
            "world_chunk": {"median_s": 1.0, "lanes": 8, "s_per_lane": 0.125},
        }
        results.update(overrides)
        return results

    def baseline(self):
        return {
            "results": {
                "day_sim": {"median_s": 0.25},
                "world_chunk": {
                    "median_s": 1.0, "lanes": 8, "s_per_lane": 0.125,
                },
            }
        }

    def test_clean_run_has_no_regressions(self):
        regressions, notes = profiling.check_regressions(
            self.current(), self.baseline()
        )
        assert regressions == []
        assert notes == []

    def test_slow_metric_flagged_over_threshold(self):
        results = self.current(
            day_sim={"median_s": 0.40, "days_per_s": 2.5}  # 60% slower
        )
        regressions, _ = profiling.check_regressions(
            results, self.baseline(), threshold=0.25
        )
        assert len(regressions) == 1
        assert "day_sim" in regressions[0]
        # A looser threshold lets the same run through.
        regressions, _ = profiling.check_regressions(
            results, self.baseline(), threshold=1.0
        )
        assert regressions == []

    def test_higher_is_better_direction(self):
        results = {"plant_step": {"median_s": 0.3, "steps": 2000,
                                  "steps_per_s": 5000.0}}
        baseline = {"results": {"plant_step": {
            "median_s": 0.2, "steps": 2000, "steps_per_s": 10000.0,
        }}}
        regressions, _ = profiling.check_regressions(results, baseline)
        assert len(regressions) == 1 and "steps_per_s" in regressions[0]

    def test_shape_mismatch_skipped_with_note(self):
        results = self.current(
            world_chunk={"median_s": 9.0, "lanes": 2, "s_per_lane": 4.5}
        )
        regressions, notes = profiling.check_regressions(
            results, self.baseline()
        )
        assert regressions == []
        assert any("world_chunk" in n and "shape" in n for n in notes)

    def test_missing_baseline_is_a_note_not_a_failure(self):
        regressions, notes = profiling.check_regressions(self.current(), None)
        assert regressions == []
        assert notes == ["no recorded baseline; nothing to check"]

    def test_bench_absent_from_baseline_noted(self):
        results = self.current(
            world_sweep_stream={
                "median_s": 5.0, "locations": 24, "workers": 4,
                "sample_every_days": 365, "trace_jobs": 400,
            }
        )
        regressions, notes = profiling.check_regressions(
            results, self.baseline()
        )
        assert regressions == []
        assert any("world_sweep_stream" in n for n in notes)

    def test_every_tracked_bench_names_a_real_metric(self):
        # The tracked table must agree with what the benches emit.
        for name, spec in profiling.TRACKED_METRICS.items():
            assert spec["better"] in ("higher", "lower")
            assert isinstance(spec["shape"], tuple)
            assert spec["metric"]

    def test_cli_check_exit_code(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            profiling, "run_bench",
            lambda quick, model: {"day_sim": {"median_s": 9.9}},
        )
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "trained_cooling_model", lambda *a, **k: object()
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": profiling.SCHEMA_VERSION,
            "results": {"day_sim": {"median_s": 0.25}},
        }))
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--no-history", "--check",
            "--output", str(out), "--baseline", str(baseline),
        ])
        assert code == 3
        assert "regressed" in capsys.readouterr().err
        # Same run, catastrophic-only threshold: passes.
        code = main([
            "bench", "--quick", "--no-history", "--check",
            "--check-threshold", "50.0",
            "--output", str(out), "--baseline", str(baseline),
        ])
        assert code == 0
