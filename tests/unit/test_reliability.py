"""Disk-reliability model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.reliability.assessment import assess
from repro.reliability.costs import TradeoffInputs, yearly_tradeoff
from repro.reliability.models import (
    ArrheniusModel,
    DiskExposure,
    ThresholdModel,
    VariationModel,
    exposure_from_day_traces,
)


def exposure(mean=38.0, peak=None, day_range=0.0, days=10):
    peak = peak if peak is not None else mean + day_range / 2.0
    return DiskExposure(
        daily_mean_temp_c=[mean] * days,
        daily_max_temp_c=[peak] * days,
        daily_range_c=[day_range] * days,
    )


class TestDiskExposure:
    def test_length_validation(self):
        with pytest.raises(ConfigError):
            DiskExposure([38.0], [40.0, 41.0], [5.0])

    def test_requires_days(self):
        with pytest.raises(ConfigError):
            DiskExposure([], [], [])

    def test_num_days(self):
        assert exposure(days=7).num_days == 7


class TestArrheniusModel:
    def test_reference_scores_one(self):
        model = ArrheniusModel(reference_temp_c=38.0)
        assert model.afr_multiplier(exposure(mean=38.0)) == pytest.approx(1.0)

    def test_hotter_is_worse(self):
        model = ArrheniusModel()
        assert model.afr_multiplier(exposure(mean=48.0)) > model.afr_multiplier(
            exposure(mean=38.0)
        )

    def test_ten_degrees_roughly_relevant_factor(self):
        # With Ea ~ 0.46 eV, +10C around 38C gives roughly 1.6x.
        model = ArrheniusModel()
        factor = model.afr_multiplier(exposure(mean=48.0))
        assert 1.3 < factor < 2.2

    def test_ignores_variation(self):
        model = ArrheniusModel()
        calm = exposure(mean=40.0, day_range=0.0)
        wild = exposure(mean=40.0, day_range=20.0)
        assert model.afr_multiplier(calm) == model.afr_multiplier(wild)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ArrheniusModel(ea_ev=0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        t1=st.floats(min_value=20.0, max_value=55.0),
        delta=st.floats(min_value=0.5, max_value=15.0),
    )
    def test_monotone_in_temperature(self, t1, delta):
        model = ArrheniusModel()
        assert model.afr_multiplier(exposure(mean=t1 + delta)) > model.afr_multiplier(
            exposure(mean=t1)
        )


class TestThresholdModel:
    def test_flat_below_knee(self):
        model = ThresholdModel()
        low = model.afr_multiplier(exposure(peak=40.0))
        mid = model.afr_multiplier(exposure(peak=48.0))
        assert abs(mid - low) < 0.1  # nearly flat below 50C

    def test_steep_above_knee(self):
        model = ThresholdModel()
        below = model.afr_multiplier(exposure(peak=48.0))
        above = model.afr_multiplier(exposure(peak=58.0))
        assert above > below + 1.0


class TestVariationModel:
    def test_benign_range_scores_one(self):
        model = VariationModel()
        assert model.afr_multiplier(
            exposure(mean=38.0, day_range=4.0)
        ) == pytest.approx(1.0)

    def test_wide_variation_is_worse(self):
        model = VariationModel()
        calm = model.afr_multiplier(exposure(mean=38.0, day_range=4.0))
        wild = model.afr_multiplier(exposure(mean=38.0, day_range=20.0))
        assert wild > calm + 1.0

    def test_weak_absolute_dependence(self):
        model = VariationModel()
        cool = model.afr_multiplier(exposure(mean=35.0, day_range=4.0))
        warm = model.afr_multiplier(exposure(mean=45.0, day_range=4.0))
        assert 0.0 < warm - cool < 0.1


class TestAssessment:
    def test_worst_case_is_max(self):
        result = assess(exposure(mean=45.0, peak=55.0, day_range=18.0))
        assert result.worst_case == max(result.by_model.values())

    def test_variation_hypothesis_flags_wide_swings(self):
        """A cool but wildly varying exposure is only bad under the
        variation hypothesis — the crux of the paper's motivation."""
        swingy = assess(exposure(mean=30.0, peak=38.0, day_range=22.0))
        assert swingy.variation > 1.5
        assert swingy.arrhenius < 1.0  # cool disks look fine to Arrhenius

    def test_hot_exposure_flags_under_arrhenius(self):
        hot = assess(exposure(mean=50.0, peak=52.0, day_range=3.0))
        assert hot.arrhenius > 1.5
        assert hot.variation < 1.2

    def test_expected_failures(self):
        result = assess(exposure())
        failures = result.expected_annual_failures(fleet_size=1000, base_afr=0.02)
        assert failures["arrhenius"] == pytest.approx(20.0, rel=0.05)

    def test_expected_failures_validation(self):
        result = assess(exposure())
        with pytest.raises(ConfigError):
            result.expected_annual_failures(0)
        with pytest.raises(ConfigError):
            result.expected_annual_failures(10, base_afr=1.5)


class TestTradeoff:
    def test_energy_savings_vs_replacement(self):
        calm = assess(exposure(mean=38.0, day_range=4.0))
        swingy = assess(exposure(mean=38.0, day_range=20.0))
        # System B saves 500 kWh but swings disks through 20C daily.
        result = yearly_tradeoff(
            cooling_kwh_a=1000.0, assessment_a=calm,
            cooling_kwh_b=500.0, assessment_b=swingy,
        )
        assert result.cooling_cost_delta_usd < 0  # saves electricity
        assert result.replacement_cost_delta_usd > 0  # kills disks
        # With default prices, the disk cost dominates a 500 kWh saving.
        assert result.net_delta_usd > 0

    def test_inputs_validation(self):
        with pytest.raises(ConfigError):
            TradeoffInputs(fleet_size=0)
        with pytest.raises(ConfigError):
            TradeoffInputs(base_afr=0.0)


class TestExposureFromTraces:
    def test_from_simulated_day(self, cooling_model, facebook_trace):
        from repro.core.coolair import CoolAir
        from repro.core.versions import all_nd
        from repro.sim.engine import (
            CoolAirAdapter,
            DayRunner,
            ProfileWorkload,
            make_smoothsim,
        )
        from repro.weather.locations import NEWARK

        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(all_nd(), cooling_model, setup.layout, setup.forecast,
                          smooth_hardware=True)
        runner = DayRunner(
            setup, ProfileWorkload(facebook_trace, setup.layout, 600.0),
            CoolAirAdapter(coolair),
        )
        day = runner.run_day(182)
        result = exposure_from_day_traces([day])
        assert result.num_days == 1
        assert 20.0 < result.daily_mean_temp_c[0] < 60.0
        assert result.daily_range_c[0] >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            exposure_from_day_traces([])
