"""World-map bin and summary edge cases (Figures 12/13 plumbing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.worldmap import (
    LocationComparison,
    PUE_BINS,
    RANGE_BINS,
    WorldSummary,
    bucket_counts,
)


def comparison(base_range=15.0, cool_range=10.0, base_pue=1.10, cool_pue=1.11,
               lat=40.0, lon=0.0):
    return LocationComparison(
        name="x",
        latitude=lat,
        longitude=lon,
        baseline_max_range_c=base_range,
        coolair_max_range_c=cool_range,
        baseline_pue=base_pue,
        coolair_pue=cool_pue,
    )


class TestLocationComparison:
    def test_reductions(self):
        c = comparison()
        assert c.range_reduction_c == 5.0
        assert c.pue_reduction == pytest.approx(-0.01)


class TestBuckets:
    def test_paper_bins_cover_reported_spectrum(self):
        # Figure 12's legend runs -1..0 through >=14.
        values = [-0.5, 1.0, 3.0, 5.0, 7.0, 9.0, 12.0, 20.0]
        counts = bucket_counts(values, RANGE_BINS)
        assert sum(counts.values()) == len(values)
        assert counts[">=14"] == 1
        assert counts["-1..0"] == 1

    def test_out_of_legend_values_dropped(self):
        counts = bucket_counts([-5.0], RANGE_BINS)
        assert sum(counts.values()) == 0

    def test_pue_bins(self):
        counts = bucket_counts([-0.03, 0.005, 0.025], PUE_BINS)
        assert counts["-0.04..-0.02"] == 1
        assert counts["0..0.01"] == 1
        assert counts["0.02..0.03"] == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-0.99, max_value=13.99), min_size=1,
                    max_size=30))
    def test_in_legend_values_counted_exactly_once(self, values):
        counts = bucket_counts(values, RANGE_BINS)
        assert sum(counts.values()) == len(values)


class TestWorldSummaryEdges:
    def test_single_location(self):
        summary = WorldSummary(comparisons=(comparison(),))
        assert summary.avg_baseline_max_range_c == 15.0
        assert summary.fraction_range_worsened == 0.0
        assert summary.worst_range_increase_c == -5.0

    def test_mixed_outcomes(self):
        summary = WorldSummary(
            comparisons=(
                comparison(cool_range=10.0),
                comparison(cool_range=15.5),  # worsened by 0.5
            )
        )
        assert summary.fraction_range_worsened == 0.5
        assert summary.worst_range_increase_c == pytest.approx(0.5)


class TestEmptySummary:
    def test_empty_summary_is_safe(self):
        import math

        summary = WorldSummary(comparisons=())
        assert math.isnan(summary.avg_baseline_max_range_c)
        assert math.isnan(summary.avg_coolair_pue)
        assert summary.fraction_range_worsened == 0.0
        assert summary.worst_range_increase_c == 0.0
        assert summary.headline() == "no locations compared yet"
        assert summary.provenance_counts() == {}
        assert sum(summary.range_bucket_counts().values()) == 0

    def test_provenance_counts(self):
        summary = WorldSummary(
            comparisons=(
                comparison(),
                comparison(),
            )
        )
        assert summary.provenance_counts() == {"simulated": 2}


class TestAccumulatorServing:
    def grid(self, n=3):
        from repro.weather.climate import Climate

        return [
            Climate(
                name=f"g{i}",
                latitude=10.0 * i,
                longitude=5.0 * i,
                mean_temp_c=15.0 + i,
                seasonal_amplitude_c=8.0,
                diurnal_amplitude_c=6.0,
            )
            for i in range(n)
        ]

    def make(self, n=3):
        from repro.analysis.worldmap import StreamingWorldAccumulator

        return StreamingWorldAccumulator(self.grid(n), "All-ND")

    def test_serve_fills_location(self):
        acc = self.make()
        acc.serve("g1", [12.0, 8.0, 1.08, 1.09, 0.5, 0.4], "surrogate_only")
        assert acc.location_metrics("g1") == [12.0, 8.0, 1.08, 1.09, 0.5, 0.4]
        assert acc.provenance_counts() == {"surrogate_only": 1}

    def test_serve_unknown_location(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            self.make().serve(
                "nowhere", [1.0, 1.0, 1.0, 1.0, 0.0, 0.0], "surrogate_only"
            )

    def test_serve_wrong_width(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            self.make().serve("g0", [1.0], "surrogate_only")

    def test_serve_never_overwrites_simulated(self):
        class Task:
            def __init__(self, system, climate):
                self.system = system
                self.climate = climate

        class Result:
            def __init__(self, max_range_c, pue, wue=0.0):
                self.max_range_c = max_range_c
                self.pue = pue
                self.wue = wue

        acc = self.make()
        target = self.grid()[0]
        acc.consume(0, Task("baseline", target), Result(14.0, 1.10))
        acc.serve("g0", [1.0, 1.0, 1.0, 1.0, 0.0, 0.0], "surrogate_only")
        acc.consume(0, Task("All-ND", target), Result(9.0, 1.11))
        assert acc.location_metrics("g0") == [14.0, 9.0, 1.10, 1.11, 0.0, 0.0]
        assert acc.provenance_counts() == {"simulated": 1}

    def test_partial_summary_mid_stream(self):
        from repro.errors import SimulationError

        acc = self.make()
        with pytest.raises(SimulationError):
            acc.summary()
        assert acc.summary(partial=True).comparisons == ()
        acc.serve(
            "g2", [12.0, 8.0, 1.08, 1.09, 0.5, 0.4], "served_from_cluster"
        )
        partial = acc.summary(partial=True)
        assert len(partial.comparisons) == 1
        assert partial.comparisons[0].provenance == "served_from_cluster"


class TestWorldMapRendering:
    def summary_at(self, points):
        return WorldSummary(
            comparisons=tuple(
                comparison(base_range=15.0 + v, lat=lat, lon=lon)
                for lat, lon, v in points
            )
        )

    def test_fixed_raster_size(self):
        from repro.analysis.worldmap import render_world_map

        summary = self.summary_at([(40.0, -70.0, 0.0), (-30.0, 150.0, 5.0)])
        text = render_world_map(summary, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 10 + 3  # borders + legend
        assert all(len(line) == 42 for line in lines[:-1])

    def test_dense_grid_downsamples_to_same_raster(self):
        from repro.analysis.worldmap import render_world_map

        points = [
            (60.0 - 0.2 * i, -180.0 + 0.35 * i, (i % 7) * 1.0)
            for i in range(1000)
        ]
        text = render_world_map(self.summary_at(points), width=40, height=10)
        assert len(text.splitlines()) == 13

    def test_occupied_tiles_never_blank(self):
        from repro.analysis.worldmap import render_world_map

        # Two locations with identical values: span collapses, both
        # must still render a visible glyph.
        summary = self.summary_at([(40.0, -70.0, 0.0), (-30.0, 150.0, 0.0)])
        body = render_world_map(summary, width=40, height=10).splitlines()[1:-2]
        glyphs = "".join(body).replace("|", "").replace(" ", "")
        assert len(glyphs) == 2

    def test_empty_summary_renders_blank_map(self):
        from repro.analysis.worldmap import render_world_map

        text = render_world_map(WorldSummary(comparisons=()))
        assert "no locations to map" in text

    def test_bad_metric_and_raster(self):
        from repro.analysis.worldmap import render_world_map
        from repro.errors import ConfigError, SimulationError

        summary = self.summary_at([(40.0, 0.0, 1.0)])
        with pytest.raises(ConfigError):
            render_world_map(summary, metric="violations")
        with pytest.raises(SimulationError):
            render_world_map(summary, width=4, height=2)

    def test_pue_metric_legend(self):
        from repro.analysis.worldmap import render_world_map

        summary = self.summary_at([(40.0, 0.0, 1.0), (10.0, 30.0, 3.0)])
        assert "PUE reduction" in render_world_map(summary, metric="pue")
