"""World-map bin and summary edge cases (Figures 12/13 plumbing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.worldmap import (
    LocationComparison,
    PUE_BINS,
    RANGE_BINS,
    WorldSummary,
    bucket_counts,
)


def comparison(base_range=15.0, cool_range=10.0, base_pue=1.10, cool_pue=1.11,
               lat=40.0, lon=0.0):
    return LocationComparison(
        name="x",
        latitude=lat,
        longitude=lon,
        baseline_max_range_c=base_range,
        coolair_max_range_c=cool_range,
        baseline_pue=base_pue,
        coolair_pue=cool_pue,
    )


class TestLocationComparison:
    def test_reductions(self):
        c = comparison()
        assert c.range_reduction_c == 5.0
        assert c.pue_reduction == pytest.approx(-0.01)


class TestBuckets:
    def test_paper_bins_cover_reported_spectrum(self):
        # Figure 12's legend runs -1..0 through >=14.
        values = [-0.5, 1.0, 3.0, 5.0, 7.0, 9.0, 12.0, 20.0]
        counts = bucket_counts(values, RANGE_BINS)
        assert sum(counts.values()) == len(values)
        assert counts[">=14"] == 1
        assert counts["-1..0"] == 1

    def test_out_of_legend_values_dropped(self):
        counts = bucket_counts([-5.0], RANGE_BINS)
        assert sum(counts.values()) == 0

    def test_pue_bins(self):
        counts = bucket_counts([-0.03, 0.005, 0.025], PUE_BINS)
        assert counts["-0.04..-0.02"] == 1
        assert counts["0..0.01"] == 1
        assert counts["0.02..0.03"] == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-0.99, max_value=13.99), min_size=1,
                    max_size=30))
    def test_in_legend_values_counted_exactly_once(self, values):
        counts = bucket_counts(values, RANGE_BINS)
        assert sum(counts.values()) == len(values)


class TestWorldSummaryEdges:
    def test_single_location(self):
        summary = WorldSummary(comparisons=(comparison(),))
        assert summary.avg_baseline_max_range_c == 15.0
        assert summary.fraction_range_worsened == 0.0
        assert summary.worst_range_increase_c == -5.0

    def test_mixed_outcomes(self):
        summary = WorldSummary(
            comparisons=(
                comparison(cool_range=10.0),
                comparison(cool_range=15.5),  # worsened by 0.5
            )
        )
        assert summary.fraction_range_worsened == 0.5
        assert summary.worst_range_increase_c == pytest.approx(0.5)
