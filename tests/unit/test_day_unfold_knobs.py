"""resolve_day_lanes: the --day-lanes / REPRO_DAY_UNFOLD precedence."""

import pytest

from repro.analysis.experiments import DEFAULT_LANES, resolve_day_lanes
from repro.errors import ConfigError


def test_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_DAY_UNFOLD", "4")
    assert resolve_day_lanes(2) == 2


def test_unset_env_stays_sequential(monkeypatch):
    monkeypatch.delenv("REPRO_DAY_UNFOLD", raising=False)
    assert resolve_day_lanes() == 1


def test_env_zero_stays_sequential(monkeypatch):
    monkeypatch.setenv("REPRO_DAY_UNFOLD", "0")
    assert resolve_day_lanes() == 1


def test_env_one_unfolds_to_lane_width(monkeypatch):
    monkeypatch.setenv("REPRO_DAY_UNFOLD", "1")
    assert resolve_day_lanes(lanes=6) == 6
    assert resolve_day_lanes() == DEFAULT_LANES


def test_env_explicit_width(monkeypatch):
    monkeypatch.setenv("REPRO_DAY_UNFOLD", "4")
    assert resolve_day_lanes(lanes=16) == 4


def test_rejects_non_positive(monkeypatch):
    """ConfigError, so the CLI reports it as a clean ``error:`` exit."""
    with pytest.raises(ConfigError):
        resolve_day_lanes(0)
    monkeypatch.setenv("REPRO_DAY_UNFOLD", "-3")
    with pytest.raises(ConfigError):
        resolve_day_lanes()


def test_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_DAY_UNFOLD", "many")
    with pytest.raises(ConfigError):
        resolve_day_lanes()
