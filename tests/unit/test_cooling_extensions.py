"""Evaporative pre-cooling and chilled-water extension tests."""

import numpy as np
import pytest

from repro import constants
from repro.cooling.extensions import (
    ChilledWaterUnits,
    EvaporativeCoolingUnits,
    evaporation_worthwhile,
)
from repro.cooling.regimes import CoolingCommand
from repro.errors import ConfigError
from repro.physics.psychrometrics import wet_bulb_c
from repro.physics.thermal import PlantInputs, ThermalPlant


class TestWetBulb:
    def test_saturated_air_wet_bulb_near_dry_bulb(self):
        assert wet_bulb_c(25.0, 99.0) == pytest.approx(25.0, abs=0.6)

    def test_dry_air_has_large_depression(self):
        assert 30.0 - wet_bulb_c(30.0, 20.0) > 10.0

    def test_never_exceeds_dry_bulb(self):
        for t in (0.0, 15.0, 35.0):
            for rh in (10.0, 50.0, 95.0):
                assert wet_bulb_c(t, rh) <= t

    def test_validation(self):
        with pytest.raises(ConfigError):
            wet_bulb_c(25.0, 120.0)


class TestEvaporativePlantPhysics:
    def run_fc(self, effectiveness, outside=35.0, rh_mixing=0.006):
        plant = ThermalPlant()
        plant.reset(30.0, 0.008)
        inputs = PlantInputs(
            fc_fan_speed=0.8,
            evaporative_effectiveness=effectiveness,
            pod_it_power_w=[400.0] * 4,
            outside_temp_c=outside,
            outside_mixing_ratio=rh_mixing,
        )
        for _ in range(30):
            plant.step(inputs, 120)
        return plant.state

    def test_evaporation_lowers_inlets_in_dry_heat(self):
        without = self.run_fc(0.0)
        with_evap = self.run_fc(0.7)
        assert (
            float(with_evap.pod_inlet_temp_c.mean())
            < float(without.pod_inlet_temp_c.mean()) - 2.0
        )

    def test_evaporation_adds_moisture(self):
        without = self.run_fc(0.0)
        with_evap = self.run_fc(0.7)
        assert with_evap.cold_aisle_mixing_ratio > without.cold_aisle_mixing_ratio

    def test_effectiveness_validated(self):
        plant = ThermalPlant()
        with pytest.raises(ConfigError):
            plant.step(
                PlantInputs(
                    fc_fan_speed=0.5,
                    evaporative_effectiveness=1.5,
                    pod_it_power_w=[100.0] * 4,
                ),
                120,
            )


class TestEvaporativeUnits:
    def test_pump_power_added_only_when_running(self):
        units = EvaporativeCoolingUnits(ramp_per_step=1.0)
        units.apply(CoolingCommand.free_cooling(0.5))
        base = units.power_w()
        units.set_evaporative(True)
        assert units.power_w() == pytest.approx(base + 55.0)
        units.apply(CoolingCommand.closed())
        assert units.power_w() == 0.0

    def test_plant_inputs_carry_effectiveness(self):
        units = EvaporativeCoolingUnits(ramp_per_step=1.0, effectiveness=0.6)
        units.set_evaporative(True)
        units.apply(CoolingCommand.free_cooling(0.5))
        assert units.plant_inputs().evaporative_effectiveness == 0.6
        units.set_evaporative(False)
        assert units.plant_inputs().evaporative_effectiveness == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            EvaporativeCoolingUnits(effectiveness=0.0)
        with pytest.raises(ConfigError):
            EvaporativeCoolingUnits(pump_power_w=-1.0)


class TestEvaporationPolicy:
    def test_runs_in_dry_heat(self):
        assert evaporation_worthwhile(
            outside_temp_c=36.0, outside_rh_pct=25.0,
            inside_rh_pct=40.0, target_temp_c=28.0,
        )

    def test_skipped_when_cool_outside(self):
        assert not evaporation_worthwhile(
            outside_temp_c=20.0, outside_rh_pct=30.0,
            inside_rh_pct=40.0, target_temp_c=28.0,
        )

    def test_skipped_when_humid(self):
        """The paper's 'within the humidity constraint'."""
        assert not evaporation_worthwhile(
            outside_temp_c=34.0, outside_rh_pct=85.0,
            inside_rh_pct=40.0, target_temp_c=28.0,
        )
        assert not evaporation_worthwhile(
            outside_temp_c=34.0, outside_rh_pct=30.0,
            inside_rh_pct=75.0, target_temp_c=28.0,
        )

    def test_skipped_when_depression_too_small(self):
        # Near saturation the wet bulb is barely below the dry bulb.
        assert not evaporation_worthwhile(
            outside_temp_c=34.0, outside_rh_pct=97.0,
            inside_rh_pct=40.0, target_temp_c=28.0, max_rh_pct=200.0,
        )


class TestChilledWater:
    def test_power_via_cop(self):
        units = ChilledWaterUnits(ramp_per_step=1.0, cop=4.5)
        units.apply(CoolingCommand.ac(compressor_duty=1.0, fan_speed=1.0))
        expected = constants.AC_COMPRESSOR_W / 4.0 + 5500.0 / 4.5
        assert units.power_w() == pytest.approx(expected)

    def test_chiller_cheaper_than_dx_at_same_duty(self):
        from repro.cooling.units import SmoothCoolingUnits

        chiller = ChilledWaterUnits(ramp_per_step=1.0, cop=4.5)
        dx = SmoothCoolingUnits(ramp_per_step=1.0)
        for units in (chiller, dx):
            units.apply(CoolingCommand.ac(compressor_duty=1.0, fan_speed=1.0))
        assert chiller.power_w() < dx.power_w()

    def test_duty_scales_power_linearly(self):
        units = ChilledWaterUnits(ramp_per_step=1.0, cop=4.0)
        units.apply(CoolingCommand.ac(compressor_duty=0.5, fan_speed=1.0))
        half = units.power_w()
        units.apply(CoolingCommand.ac(compressor_duty=1.0, fan_speed=1.0))
        full = units.power_w()
        assert full - half == pytest.approx(5500.0 / 4.0 / 2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChilledWaterUnits(cop=0.0)
        with pytest.raises(ConfigError):
            ChilledWaterUnits(capacity_w=-5.0)
