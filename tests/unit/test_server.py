"""Server power-state protocol tests (Section 4.2)."""

import pytest

from repro.datacenter.server import PowerState, Server
from repro.errors import ConfigError


@pytest.fixture()
def server():
    return Server(server_id=0, pod_id=0)


class TestPowerDraw:
    def test_idle_power(self, server):
        assert server.power_w() == 22.0

    def test_peak_power(self, server):
        server.set_utilization(1.0)
        assert server.power_w() == 30.0

    def test_power_linear_in_utilization(self, server):
        server.set_utilization(0.5)
        assert server.power_w() == pytest.approx(26.0)

    def test_sleep_power(self, server):
        server.sleep()
        assert server.power_w() == 2.0

    def test_decommissioned_still_draws_active_power(self, server):
        server.set_utilization(0.25)
        server.decommission()
        assert server.power_w() == pytest.approx(24.0)

    def test_rejects_invalid_peak(self):
        with pytest.raises(ConfigError):
            Server(0, 0, idle_power_w=30.0, peak_power_w=20.0)


class TestTransitions:
    def test_initial_state_active(self, server):
        assert server.state is PowerState.ACTIVE
        assert server.can_run_new_tasks

    def test_decommissioned_cannot_run_new_tasks(self, server):
        server.decommission()
        assert not server.can_run_new_tasks
        assert server.is_on

    def test_sleep_clears_utilization(self, server):
        server.set_utilization(0.8)
        server.sleep()
        assert server.utilization == 0.0
        assert not server.is_on

    def test_wake_counts_power_cycle(self, server):
        assert server.power_cycles == 0
        server.sleep()
        server.activate()
        assert server.power_cycles == 1

    def test_recommission_is_not_a_power_cycle(self, server):
        server.decommission()
        server.activate()
        assert server.power_cycles == 0

    def test_repeated_sleep_is_idempotent(self, server):
        server.sleep()
        server.sleep()
        server.activate()
        assert server.power_cycles == 1

    def test_cannot_decommission_sleeping_server(self, server):
        server.sleep()
        with pytest.raises(ConfigError):
            server.decommission()


class TestProtocolInvariants:
    def test_covering_subset_refuses_sleep(self, server):
        server.in_covering_subset = True
        with pytest.raises(ConfigError):
            server.sleep()

    def test_server_with_job_data_refuses_sleep(self, server):
        server.holds_job_data = True
        with pytest.raises(ConfigError):
            server.sleep()
        # The required path: decommission first, then sleep once data clears.
        server.decommission()
        server.holds_job_data = False
        server.sleep()
        assert server.state is PowerState.SLEEP

    def test_set_utilization_on_sleeping_server_stays_zero(self, server):
        server.sleep()
        server.set_utilization(0.9)
        assert server.utilization == 0.0

    def test_rejects_out_of_range_utilization(self, server):
        with pytest.raises(ConfigError):
            server.set_utilization(1.5)
