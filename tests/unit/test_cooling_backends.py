"""The cooling-plant backends: registry, curves, and resource draws.

Pins the contracts docs/EXPERIMENTS.md documents:

* the ``parasol`` backend is the pre-backend units verbatim (same
  classes, zero water), so default results stay bit-identical;
* the chiller COP curve hits its documented endpoints and never pays
  less than the physics allows;
* the tower's capacity collapses toward the wet-bulb cutoff and its
  water draw is evaporation plus blowdown at the configured cycles of
  concentration;
* the hybrid plant picks free-cooling/tower/chiller regimes the way the
  docstrings promise.
"""

import pytest

from repro import constants
from repro.cooling.backends import (
    DEFAULT_PLANT,
    PLANT_ENV_VAR,
    PLANTS,
    ChillerUnits,
    CoolingTowerUnits,
    HybridUnits,
    chiller_cop,
    chiller_lift_k,
    chiller_power_w,
    get_backend,
    resolve_plant,
    tower_capacity_factor,
    tower_power_w,
    tower_water_l,
)
from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.cooling.units import AbruptCoolingUnits, SmoothCoolingUnits
from repro.errors import ConfigError
from repro.physics.psychrometrics import evaporation_l_per_kwh, wet_bulb_c


def saturate(units, command, steps=10):
    """Apply a command until the smooth ramp reaches its target."""
    for _ in range(steps):
        units.apply(command)


AC_FULL = CoolingCommand(
    mode=CoolingMode.AC_ON, ac_fan_speed=1.0, ac_compressor_duty=1.0
)
FC_FULL = CoolingCommand(mode=CoolingMode.FREE_COOLING, fc_fan_speed=1.0)


class TestResolvePlant:
    def test_default_is_parasol(self, monkeypatch):
        monkeypatch.delenv(PLANT_ENV_VAR, raising=False)
        assert resolve_plant() == DEFAULT_PLANT == "parasol"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(PLANT_ENV_VAR, "chiller")
        assert resolve_plant() == "chiller"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(PLANT_ENV_VAR, "chiller")
        assert resolve_plant("cooling_tower") == "cooling_tower"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.delenv(PLANT_ENV_VAR, raising=False)
        with pytest.raises(ConfigError, match="unknown cooling plant"):
            resolve_plant("swamp_cooler")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PLANT_ENV_VAR, "swamp_cooler")
        with pytest.raises(ConfigError, match="unknown cooling plant"):
            resolve_plant()


class TestRegistry:
    def test_every_plant_registered(self):
        for plant in PLANTS:
            backend = get_backend(plant)
            assert backend.name == plant

    def test_parasol_is_the_legacy_units(self):
        backend = get_backend("parasol")
        assert type(backend.make_units(smooth=False)) is AbruptCoolingUnits
        assert type(backend.make_units(smooth=True)) is SmoothCoolingUnits

    def test_alternative_units_are_smooth_subclasses(self):
        # SimSetup.smooth_hardware is an isinstance check against
        # SmoothCoolingUnits; every alternative plant must satisfy it.
        for plant in ("chiller", "cooling_tower", "hybrid"):
            units = get_backend(plant).make_units(smooth=True)
            assert isinstance(units, SmoothCoolingUnits)

    def test_water_flags_match_step_resources(self):
        assert not get_backend("parasol").uses_water
        assert not get_backend("chiller").uses_water
        assert get_backend("cooling_tower").uses_water
        assert get_backend("hybrid").uses_water


class TestChillerCurves:
    def test_cop_reference_endpoint(self):
        assert chiller_cop(constants.CHILLER_REFERENCE_LIFT_K) == pytest.approx(
            constants.CHILLER_COP_AT_REFERENCE
        )

    def test_cop_halves_at_double_lift(self):
        assert chiller_cop(2 * constants.CHILLER_REFERENCE_LIFT_K) == (
            pytest.approx(constants.CHILLER_COP_AT_REFERENCE / 2.0)
        )

    def test_cop_saturates_at_low_lift(self):
        assert chiller_cop(0.5) == constants.CHILLER_MAX_COP
        assert chiller_cop(-3.0) == constants.CHILLER_MAX_COP

    def test_cop_monotone_non_increasing_in_lift(self):
        lifts = [2.0, 5.0, 10.0, 25.0, 40.0, 60.0]
        cops = [chiller_cop(lift) for lift in lifts]
        assert all(a >= b for a, b in zip(cops, cops[1:]))

    def test_lift_grows_with_outside_temp(self):
        temps = [-10.0, 0.0, 15.0, 30.0, 45.0]
        lifts = [chiller_lift_k(t) for t in temps]
        assert all(lift >= constants.CHILLER_MIN_LIFT_K for lift in lifts)
        assert all(a <= b for a, b in zip(lifts, lifts[1:]))

    def test_power_monotone_and_non_negative(self):
        assert chiller_power_w(0.0, 30.0) == 0.0
        assert chiller_power_w(-0.5, 30.0) == 0.0
        duties = [0.1, 0.3, 0.6, 1.0]
        powers = [chiller_power_w(d, 30.0) for d in duties]
        assert all(p > 0 for p in powers)
        assert all(a < b for a, b in zip(powers, powers[1:]))
        # Hotter outside -> lower COP -> more compressor power.
        assert chiller_power_w(1.0, 40.0) > chiller_power_w(1.0, 10.0)


class TestTowerCurves:
    def test_capacity_full_below_band(self):
        cold = constants.TOWER_CUTOFF_WB_C - constants.TOWER_CAPACITY_BAND_K
        assert tower_capacity_factor(cold) == 1.0
        assert tower_capacity_factor(cold - 10.0) == 1.0

    def test_capacity_zero_at_cutoff(self):
        assert tower_capacity_factor(constants.TOWER_CUTOFF_WB_C) == 0.0
        assert tower_capacity_factor(constants.TOWER_CUTOFF_WB_C + 5.0) == 0.0

    def test_capacity_ramps_linearly(self):
        mid = constants.TOWER_CUTOFF_WB_C - constants.TOWER_CAPACITY_BAND_K / 2
        assert tower_capacity_factor(mid) == pytest.approx(0.5)

    def test_power_monotone_and_non_negative(self):
        assert tower_power_w(0.0) == 0.0
        assert tower_power_w(-1.0) == 0.0
        duties = [0.1, 0.3, 0.6, 1.0]
        powers = [tower_power_w(d) for d in duties]
        assert all(p > 0 for p in powers)
        assert all(a < b for a, b in zip(powers, powers[1:]))
        assert tower_power_w(1.0) == pytest.approx(
            constants.TOWER_PUMP_FULL_W + constants.TOWER_FAN_FULL_W
        )

    def test_chiller_outdraws_tower_at_equal_duty(self):
        # The energy-vs-water tradeoff the world sweep demonstrates
        # rests on this inequality holding at every duty.
        for duty in (0.1, 0.5, 1.0):
            for temp in (0.0, 20.0, 40.0):
                assert chiller_power_w(duty, temp) > tower_power_w(duty)

    def test_water_is_evaporation_plus_blowdown(self):
        # Reject exactly 1 kWh of heat: evaporation is the latent-heat
        # quotient, blowdown adds 1/(COC-1) of it.
        water = tower_water_l(1000.0, 3600.0)
        evaporated = evaporation_l_per_kwh()
        expected = evaporated * (
            1.0 + 1.0 / (constants.TOWER_CYCLES_OF_CONCENTRATION - 1.0)
        )
        assert water == pytest.approx(expected)

    def test_no_water_without_heat(self):
        assert tower_water_l(0.0, 3600.0) == 0.0
        assert tower_water_l(-100.0, 3600.0) == 0.0


class TestParasolBitIdentity:
    def test_step_resources_is_power_and_zero_water(self):
        for smooth in (False, True):
            units = get_backend("parasol").make_units(smooth=smooth)
            saturate(units, FC_FULL)
            power, water = units.step_resources(3000.0, 60.0)
            assert power == units.power_w()
            assert water == 0.0

    def test_observe_boundary_does_not_change_power(self):
        units = get_backend("parasol").make_units(smooth=True)
        saturate(units, AC_FULL)
        before = units.power_w()
        units.observe_boundary(45.0, 90.0)
        assert units.power_w() == before


class TestChillerUnits:
    def test_free_cooling_maps_to_mechanical(self):
        units = ChillerUnits()
        saturate(units, FC_FULL)
        assert units.fc_fan_speed == 0.0
        assert units.mode is CoolingMode.AC_ON
        assert units.ac_compressor_duty > 0.0

    def test_no_water(self):
        units = ChillerUnits()
        units.observe_boundary(35.0, 40.0)
        saturate(units, AC_FULL)
        _, water = units.step_resources(3000.0, 60.0)
        assert water == 0.0

    def test_power_tracks_outside_temp(self):
        units = ChillerUnits()
        saturate(units, AC_FULL)
        units.observe_boundary(10.0, 50.0)
        mild = units.power_w()
        units.observe_boundary(40.0, 50.0)
        assert units.power_w() > mild


class TestCoolingTowerUnits:
    def test_capacity_scales_plant_inputs(self):
        units = CoolingTowerUnits()
        saturate(units, AC_FULL)
        mid_wb = constants.TOWER_CUTOFF_WB_C - constants.TOWER_CAPACITY_BAND_K / 2
        units.observe_boundary(mid_wb, 100.0)  # saturated air: wb == db
        assert wet_bulb_c(mid_wb, 100.0) == pytest.approx(mid_wb, abs=0.2)
        inputs = units.plant_inputs()
        assert inputs.ac_compressor_duty == pytest.approx(
            units.ac_compressor_duty * units.capacity_factor()
        )
        assert 0.0 < units.capacity_factor() < 1.0

    def test_water_drawn_when_rejecting_heat(self):
        units = CoolingTowerUnits()
        units.observe_boundary(5.0, 50.0)
        saturate(units, AC_FULL)
        _, water = units.step_resources(3000.0, 600.0)
        assert water > 0.0

    def test_no_water_when_idle(self):
        units = CoolingTowerUnits()
        units.observe_boundary(5.0, 50.0)
        _, water = units.step_resources(3000.0, 600.0)
        assert water == 0.0


class TestHybridUnits:
    def test_free_cooling_regime(self):
        units = HybridUnits()
        units.observe_boundary(15.0, 50.0)
        saturate(units, FC_FULL)
        assert units.active_regime == "free_cooling"

    def test_tower_when_wet_bulb_permits(self):
        units = HybridUnits()
        units.observe_boundary(10.0, 50.0)
        saturate(units, AC_FULL)
        assert units.active_regime == "tower"
        _, water = units.step_resources(3000.0, 600.0)
        assert water > 0.0

    def test_chiller_when_wet_bulb_too_high(self):
        units = HybridUnits()
        units.observe_boundary(35.0, 85.0)
        assert wet_bulb_c(35.0, 85.0) > constants.TOWER_CUTOFF_WB_C
        saturate(units, AC_FULL)
        assert units.active_regime == "chiller"
        _, water = units.step_resources(3000.0, 600.0)
        assert water == 0.0

    def test_off_after_reset(self):
        units = HybridUnits()
        units.observe_boundary(10.0, 50.0)
        saturate(units, AC_FULL)
        units.reset()
        assert units.active_regime == "off"
        assert units.power_w() == 0.0
