"""Fault-injection layer tests (repro.faults + the sensor seam).

Covers schedule validation, each sensor fault channel's semantics
(including the healthy/unhealthy split that drives safe-mode fallback),
seeded determinism, log-gap filtering, and the half-up quantization rule
shared by the scalar sensors and the lane engine.
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.datacenter.layout import parasol_layout
from repro.datacenter.sensors import TemperatureSensor, quantize_half_up
from repro.errors import ConfigError
from repro.faults import (
    ActuatorFault,
    BUILTIN_SCENARIOS,
    FaultInjector,
    FaultSchedule,
    LogGapFault,
    SensorFault,
    apply_log_gaps,
    builtin_scenario,
)
from repro.cooling.regimes import CoolingMode


class TestQuantizeHalfUp:
    """The tie-pinning satellite: halves round up, never to even."""

    @pytest.mark.parametrize("value, expected", [
        (25.25, 25.5),   # round() would give 25.0 (half to even)
        (25.75, 26.0),
        (25.1, 25.0),
        (25.4, 25.5),
        (-0.25, 0.0),    # halves round toward +inf, also below zero
    ])
    def test_ties_round_up_at_half_degree(self, value, expected):
        assert quantize_half_up(value, 0.5) == expected

    def test_sensor_observe_uses_half_up(self):
        sensor = TemperatureSensor("t", resolution_c=0.5)
        assert sensor.observe(25.25) == 25.5
        assert sensor.observe(25.75) == 26.0

    def test_lane_formula_matches_scalar_bit_for_bit(self):
        values = np.array([25.25, 25.75, -0.25, 18.1, 33.3333, 29.999])
        lanes = np.floor(values / 0.5 + 0.5) * 0.5
        scalar = [quantize_half_up(v, 0.5) for v in values]
        assert list(lanes) == scalar

    def test_differs_from_python_round_exactly_at_ties(self):
        # Documented divergence: round() is half-to-even.
        assert round(25.25 / 0.5) * 0.5 == 25.0
        assert quantize_half_up(25.25, 0.5) == 25.5


class TestScheduleValidation:
    def test_empty_schedule_is_falsy(self):
        assert FaultSchedule().is_empty
        assert not FaultSchedule()
        assert bool(builtin_scenario("inlet-dropout"))

    def test_unknown_sensor_kind_rejected(self):
        with pytest.raises(ConfigError, match="fault kind"):
            SensorFault(sensor="inlet_pod0", kind="melt")

    def test_unknown_actuator_kind_rejected(self):
        with pytest.raises(ConfigError, match="fault kind"):
            ActuatorFault(kind="explode")

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            SensorFault(sensor="x", kind="dropout", start_day=10, end_day=10)

    def test_spike_probability_range_checked(self):
        with pytest.raises(ConfigError, match="spike_probability"):
            SensorFault(sensor="x", kind="spike", spike_probability=1.5)

    def test_log_gap_must_drop_something(self):
        with pytest.raises(ConfigError, match="drops nothing"):
            LogGapFault()

    def test_unknown_builtin_scenario(self):
        with pytest.raises(ConfigError, match="choices"):
            builtin_scenario("meteor-strike")

    def test_unknown_target_sensor_rejected_at_attach(self):
        schedule = FaultSchedule(
            sensor_faults=(SensorFault(sensor="inlet_pod99", kind="dropout"),)
        )
        injector = FaultInjector(schedule)
        with pytest.raises(ConfigError, match="unknown sensor"):
            injector.attach(parasol_layout(), units=None)


def _wired_sensor(fault, day=182):
    """A real inlet sensor with one fault channel installed."""
    layout = parasol_layout()
    injector = FaultInjector(FaultSchedule(sensor_faults=(fault,)))
    injector.attach(layout, units=None)
    injector.begin_day(day)
    sensor = next(
        s for s in layout.inlet_sensors if s.name == fault.sensor
    )
    return sensor, injector


class TestSensorChannels:
    def test_dropout_holds_last_reading_and_reports_unhealthy(self):
        fault = SensorFault(sensor="inlet_pod3", kind="dropout",
                            start_day=100, end_day=200)
        sensor, injector = _wired_sensor(fault, day=50)
        injector.set_time(0.0)
        assert sensor.observe(24.0) == 24.0
        assert sensor.healthy
        injector.begin_day(150)
        assert sensor.observe(30.0) == 24.0  # held, not the new value
        assert not sensor.healthy
        injector.begin_day(250)  # window over
        assert sensor.observe(30.0) == 30.0
        assert sensor.healthy

    def test_dead_sensor_with_no_prior_reading_returns_quantized_truth(self):
        fault = SensorFault(sensor="inlet_pod3", kind="dropout")
        sensor, injector = _wired_sensor(fault)
        injector.set_time(0.0)
        assert sensor.observe(26.2) == 26.0
        assert not sensor.healthy

    def test_stuck_pins_value_and_reports_unhealthy(self):
        fault = SensorFault(sensor="inlet_pod0", kind="stuck", stuck_value=24.0)
        sensor, injector = _wired_sensor(fault)
        injector.set_time(0.0)
        assert sensor.observe(31.0) == 24.0
        assert sensor.observe(18.0) == 24.0
        assert not sensor.healthy

    def test_stuck_without_value_freezes_first_windowed_reading(self):
        fault = SensorFault(sensor="inlet_pod0", kind="stuck")
        sensor, injector = _wired_sensor(fault)
        injector.set_time(0.0)
        assert sensor.observe(27.3) == 27.5
        assert sensor.observe(19.0) == 27.5

    def test_drift_ramps_with_time_but_stays_healthy(self):
        fault = SensorFault(sensor="inlet_pod2", kind="drift",
                            drift_per_hour=0.5)
        sensor, injector = _wired_sensor(fault)
        injector.set_time(0.0)
        assert sensor.observe(25.0) == 25.0
        injector.set_time(4 * 3600.0)
        assert sensor.observe(25.0) == 27.0  # +0.5C/h * 4h
        assert sensor.healthy  # drift is undetectable

    def test_spike_same_seed_same_sequence(self):
        fault = SensorFault(sensor="inlet_pod1", kind="spike",
                            spike_magnitude=6.0, spike_probability=0.3)

        def run():
            sensor, injector = _wired_sensor(fault)
            readings = []
            for step in range(50):
                injector.set_time(step * 120.0)
                readings.append(sensor.observe(25.0))
            return readings

        first, second = run(), run()
        assert first == second
        assert any(r != 25.0 for r in first)  # some spikes fired
        assert all(abs(r - 25.0) in (0.0, 6.0) for r in first)

    def test_window_relatch_resets_stuck_value(self):
        fault = SensorFault(sensor="inlet_pod0", kind="stuck",
                            start_day=10, end_day=20)
        sensor, injector = _wired_sensor(fault, day=12)
        injector.set_time(0.0)
        assert sensor.observe(22.0) == 22.0
        injector.begin_day(25)  # heal
        assert sensor.observe(30.0) == 30.0
        injector.begin_day(15)  # re-enter window: latch anew
        assert sensor.observe(28.0) == 28.0
        assert sensor.observe(18.0) == 28.0


class TestActuatorFaults:
    def test_begin_day_programs_units_inside_window_only(self):
        calls = []
        units = SimpleNamespace(
            set_faults=lambda **kw: calls.append(kw)
        )
        schedule = FaultSchedule(actuator_faults=(
            ActuatorFault(kind="fan_stuck", stuck_fan_speed=0.35,
                          start_day=100, end_day=200),
            ActuatorFault(kind="compressor_lockout"),
        ))
        injector = FaultInjector(schedule)
        injector.attach(parasol_layout(), units)
        injector.begin_day(150)
        assert calls[-1] == dict(
            fan_stuck_speed=0.35, compressor_locked=True, damper_jammed=False
        )
        injector.begin_day(250)
        assert calls[-1] == dict(
            fan_stuck_speed=None, compressor_locked=True, damper_jammed=False
        )


def _sample(mode):
    return SimpleNamespace(mode=mode)


class TestLogGaps:
    def test_drop_by_mode(self):
        log = [
            _sample(CoolingMode.FREE_COOLING),
            _sample(CoolingMode.CLOSED),
            _sample(CoolingMode.FREE_COOLING),
            _sample(CoolingMode.AC_ON),
        ]
        kept = apply_log_gaps(log, (LogGapFault(drop_mode="free_cooling"),))
        assert [s.mode for s in kept] == [
            CoolingMode.CLOSED, CoolingMode.AC_ON,
        ]

    def test_drop_positional_slice(self):
        log = [_sample(CoolingMode.CLOSED) for _ in range(10)]
        kept = apply_log_gaps(
            log, (LogGapFault(start_fraction=0.2, end_fraction=0.5),)
        )
        assert len(kept) == 7  # indices 2, 3, 4 dropped

    def test_no_gaps_is_identity(self):
        log = [_sample(CoolingMode.CLOSED)]
        assert apply_log_gaps(log, ()) == log


class TestBuiltinScenarios:
    def test_every_scenario_is_nonempty_and_valid(self):
        for name, schedule in BUILTIN_SCENARIOS.items():
            assert schedule, name
            # Sensor-fault scenarios must attach cleanly to the layout.
            if schedule.sensor_faults:
                FaultInjector(schedule).attach(parasol_layout(), units=None)


class TestEngineRouting:
    """Faulted configs must route to the scalar reference path."""

    def test_effective_engine_falls_back_to_scalar(self):
        import dataclasses

        from repro.analysis import experiments
        from repro.core.versions import all_nd

        faulted = dataclasses.replace(
            all_nd(), faults=builtin_scenario("inlet-dropout")
        )
        assert experiments.effective_engine(faulted, "lanes") == "scalar"
        # An empty schedule stays lane-eligible (it is a no-op).
        empty = dataclasses.replace(all_nd(), faults=FaultSchedule())
        assert experiments.effective_engine(empty, "lanes") == "lanes"

    def test_fingerprint_distinguishes_faulted_configs(self):
        import dataclasses

        from repro.analysis.experiments import config_fingerprint
        from repro.core.versions import all_nd

        plain = config_fingerprint(all_nd())
        faulted = config_fingerprint(dataclasses.replace(
            all_nd(), faults=builtin_scenario("inlet-dropout")
        ))
        assert plain != faulted
