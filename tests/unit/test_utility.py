"""Utility (penalty) function tests (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.band import TemperatureBand
from repro.core.config import BandMode, CoolAirConfig
from repro.core.utility import RegimePrediction, UtilityFunction, UtilityWeights
from repro.errors import ConfigError

BAND = TemperatureBand(25.0, 30.0)
HORIZON = 600.0


def prediction(temps, rh=50.0, energy=0.0, ac_full=False):
    temps = np.asarray(temps, dtype=float)
    return RegimePrediction(
        sensor_temps_c=temps,
        rh_pct=np.full(temps.shape[0], rh),
        cooling_energy_kwh=energy,
        ac_at_full_speed=ac_full,
    )


def flat(temp, steps=5, sensors=2):
    return np.full((steps, sensors), float(temp))


@pytest.fixture()
def utility():
    return UtilityFunction(CoolAirConfig())


class TestPenaltyTerms:
    def test_zero_penalty_inside_band(self, utility):
        score = utility.score(prediction(flat(27.0)), BAND, [27.0, 27.0], HORIZON)
        assert score == 0.0

    def test_band_violation_scales_with_distance(self, utility):
        near = utility.score(prediction(flat(31.0)), BAND, [31.0, 31.0], HORIZON)
        far = utility.score(prediction(flat(33.0)), BAND, [33.0, 33.0], HORIZON)
        assert far > near > 0.0

    def test_below_band_also_penalized(self, utility):
        score = utility.score(prediction(flat(20.0)), BAND, [20.0, 20.0], HORIZON)
        assert score > 0.0

    def test_rate_violation_penalized(self, utility):
        # 3C per 2-minute step = 90C/hour, far over the 20C/h limit.
        temps = np.array([[27.0, 27.0], [24.0, 24.0], [27.0, 27.0],
                          [27.0, 27.0], [27.0, 27.0]])
        fast = utility.score(prediction(temps), BAND, [27.0, 27.0], HORIZON)
        slow = utility.score(prediction(flat(27.0)), BAND, [27.0, 27.0], HORIZON)
        assert fast > slow

    def test_humidity_violation(self, utility):
        humid = utility.score(
            prediction(flat(27.0), rh=90.0), BAND, [27.0, 27.0], HORIZON
        )
        dry = utility.score(
            prediction(flat(27.0), rh=60.0), BAND, [27.0, 27.0], HORIZON
        )
        assert humid > dry == 0.0

    def test_ac_full_speed_penalty(self, utility):
        with_ac = utility.score(
            prediction(flat(27.0), ac_full=True), BAND, [27.0, 27.0], HORIZON
        )
        without = utility.score(prediction(flat(27.0)), BAND, [27.0, 27.0], HORIZON)
        assert with_ac > without

    def test_energy_term_when_enabled(self):
        config = CoolAirConfig(use_energy_term=True)
        utility = UtilityFunction(config)
        cheap = utility.score(prediction(flat(27.0), energy=0.01), BAND, [27.0] * 2, HORIZON)
        costly = utility.score(prediction(flat(27.0), energy=0.35), BAND, [27.0] * 2, HORIZON)
        assert costly > cheap

    def test_energy_term_disabled_for_variation_version(self):
        config = CoolAirConfig(use_energy_term=False)
        utility = UtilityFunction(config)
        a = utility.score(prediction(flat(27.0), energy=0.0), BAND, [27.0] * 2, HORIZON)
        b = utility.score(prediction(flat(27.0), energy=1.0), BAND, [27.0] * 2, HORIZON)
        assert a == b


class TestModesAndValidation:
    def test_max_only_ignores_band(self):
        config = CoolAirConfig(
            band_mode=BandMode.MAX_ONLY,
            max_temp_setpoint_c=29.0,
            use_band_term=False,
            use_rate_term=False,
        )
        utility = UtilityFunction(config)
        # 20C would violate an adaptive band but is fine for max-only.
        score = utility.score(prediction(flat(20.0)), BAND, [20.0, 20.0], HORIZON)
        assert score == 0.0
        over = utility.score(prediction(flat(30.0)), BAND, [30.0, 30.0], HORIZON)
        assert over > 0.0

    def test_persistent_violation_costs_more_than_transient(self, utility):
        transient = np.vstack([flat(31.0, steps=1), flat(27.0, steps=4)])
        persistent = flat(31.0, steps=5)
        t = utility.score(prediction(transient), BAND, [27.0, 27.0], HORIZON)
        p = utility.score(prediction(persistent), BAND, [27.0, 27.0], HORIZON)
        assert p > t

    def test_sensor_count_mismatch(self, utility):
        with pytest.raises(ConfigError):
            utility.score(prediction(flat(27.0, sensors=3)), BAND, [27.0] * 2, HORIZON)

    def test_bad_horizon(self, utility):
        with pytest.raises(ConfigError):
            utility.score(prediction(flat(27.0)), BAND, [27.0] * 2, 0.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigError):
            UtilityWeights(ac_full_speed=-1.0)

    def test_prediction_shape_validation(self):
        with pytest.raises(ConfigError):
            RegimePrediction(
                sensor_temps_c=np.zeros(5),
                rh_pct=np.zeros(5),
                cooling_energy_kwh=0.0,
                ac_at_full_speed=False,
            )

    @settings(max_examples=30, deadline=None)
    @given(temp=st.floats(min_value=10.0, max_value=45.0))
    def test_score_nonnegative(self, temp):
        utility = UtilityFunction(CoolAirConfig())
        score = utility.score(
            prediction(flat(temp)), BAND, [temp, temp], HORIZON
        )
        assert score >= 0.0
