"""Compute Manager tests: placement, activation, temporal scheduling."""

import numpy as np
import pytest

from repro.core.band import TemperatureBand
from repro.core.compute import (
    ComputeConfigurer,
    ComputeOptimizer,
    TemporalScheduler,
)
from repro.core.config import (
    CoolAirConfig,
    PlacementStrategy,
    TemporalPolicy,
)
from repro.core.versions import all_def, all_nd, energy_def
from repro.datacenter.server import PowerState
from repro.errors import SchedulingError
from repro.weather.forecast import DailyForecast
from repro.workload.covering import covering_subset
from repro.workload.job import Job


def forecast(temps):
    return DailyForecast(
        day_of_year=0, issued_hour=0, hourly_temps_c=np.asarray(temps, dtype=float)
    )


def deferrable_job(job_id, arrival_hour, deadline_hours=6.0):
    arrival = arrival_hour * 3600.0
    return Job(
        job_id=job_id,
        arrival_s=arrival,
        num_maps=4,
        map_duration_s=100.0,
        num_reduces=1,
        reduce_duration_s=50.0,
        deadline_s=arrival + deadline_hours * 3600.0,
    )


class TestComputeOptimizer:
    def test_high_recirc_placement_order(self, layout):
        optimizer = ComputeOptimizer(all_nd(), layout)
        order = optimizer.placement_order()
        assert order[0].pod_id == 3  # highest recirculation pod first
        assert order[-1].pod_id == 0

    def test_low_recirc_placement_order(self, layout):
        config = all_nd()
        config.placement = PlacementStrategy.LOW_RECIRCULATION_FIRST
        optimizer = ComputeOptimizer(config, layout)
        assert optimizer.placement_order()[0].pod_id == 0

    def test_active_set_meets_demand(self, layout):
        optimizer = ComputeOptimizer(all_nd(), layout)
        active = optimizer.plan_active_set(20)
        assert len(active) == 20

    def test_covering_subset_always_included(self, layout):
        covering_subset(layout.all_servers(), dataset_gb=1000.0)
        optimizer = ComputeOptimizer(all_nd(), layout)
        active = optimizer.plan_active_set(4)
        subset_ids = {
            s.server_id for s in layout.all_servers() if s.in_covering_subset
        }
        assert subset_ids <= active
        assert len(active) >= len(subset_ids)

    def test_active_pods_derived_from_active_set(self, layout):
        optimizer = ComputeOptimizer(all_nd(), layout)
        active = optimizer.plan_active_set(8)  # half a pod
        pods = optimizer.active_pod_indices(active)
        assert pods == [3]  # all in the highest-recirc pod


class TestComputeConfigurer:
    def test_wakes_required_servers(self, layout):
        configurer = ComputeConfigurer(layout)
        for server in layout.all_servers():
            server.sleep()
        configurer.apply({0, 1, 2})
        assert layout.server_by_id(0).state is PowerState.ACTIVE
        assert layout.server_by_id(63).state is PowerState.SLEEP

    def test_sleeps_unneeded_servers(self, layout):
        configurer = ComputeConfigurer(layout)
        configurer.apply({0, 1})
        states = {s.server_id: s.state for s in layout.all_servers()}
        assert states[0] is PowerState.ACTIVE
        assert states[10] is PowerState.SLEEP

    def test_decommission_before_sleep_with_data(self, layout):
        configurer = ComputeConfigurer(layout)
        server = layout.server_by_id(5)
        server.holds_job_data = True
        configurer.apply({0})
        assert server.state is PowerState.DECOMMISSIONED
        # Data cleared: next pass puts it to sleep.
        server.holds_job_data = False
        configurer.apply({0})
        assert server.state is PowerState.SLEEP

    def test_covering_subset_never_sleeps(self, layout):
        covering_subset(layout.all_servers(), dataset_gb=500.0)
        configurer = ComputeConfigurer(layout)
        configurer.apply(set())
        for server in layout.all_servers():
            if server.in_covering_subset:
                assert server.state is PowerState.ACTIVE


class TestBandAwareScheduling:
    def test_defers_out_of_band_jobs_to_in_band_hours(self):
        config = all_def()  # offset 8, band-aware
        scheduler = TemporalScheduler(config)
        band = TemperatureBand(25.0, 30.0)
        # Outside 10C at hour 0 (inlet ~18, out of band), 20C from hour 4
        # (inlet ~28, in band).
        temps = [10.0] * 4 + [20.0] * 20
        jobs = [deferrable_job(0, arrival_hour=1)]
        deferred = scheduler.schedule_day(jobs, forecast(temps), band)
        assert deferred == 1
        assert jobs[0].scheduled_start_s == 4 * 3600.0

    def test_keeps_jobs_already_in_band(self):
        scheduler = TemporalScheduler(all_def())
        band = TemperatureBand(25.0, 30.0)
        temps = [20.0] * 24  # always in band (20 + 8 = 28)
        jobs = [deferrable_job(0, arrival_hour=2)]
        assert scheduler.schedule_day(jobs, forecast(temps), band) == 0
        assert jobs[0].scheduled_start_s is None

    def test_skips_when_band_slid(self):
        scheduler = TemporalScheduler(all_def())
        band = TemperatureBand(25.0, 30.0, slid=True)
        jobs = [deferrable_job(0, arrival_hour=1)]
        assert scheduler.schedule_day(jobs, forecast([10.0] * 24), band) == 0

    def test_skips_when_no_overlap(self):
        scheduler = TemporalScheduler(all_def())
        band = TemperatureBand(25.0, 30.0)
        # Outside always 40C: inlet predictions never inside the band.
        assert (
            scheduler.schedule_day(
                [deferrable_job(0, 1)], forecast([40.0] * 24), band
            )
            == 0
        )

    def test_never_defers_beyond_deadline(self):
        scheduler = TemporalScheduler(all_def())
        band = TemperatureBand(25.0, 30.0)
        # In-band hours exist only past the job's 6-hour deadline.
        temps = [10.0] * 10 + [20.0] * 14
        jobs = [deferrable_job(0, arrival_hour=1, deadline_hours=6.0)]
        assert scheduler.schedule_day(jobs, forecast(temps), band) == 0
        assert jobs[0].scheduled_start_s is None

    def test_requires_band(self):
        scheduler = TemporalScheduler(all_def())
        with pytest.raises(SchedulingError):
            scheduler.schedule_day([], forecast([20.0] * 24), None)

    def test_non_deferrable_jobs_untouched(self):
        scheduler = TemporalScheduler(all_def())
        band = TemperatureBand(25.0, 30.0)
        job = Job(0, 3600.0, 4, 100.0, 1, 50.0)  # no deadline
        temps = [10.0] * 4 + [20.0] * 20
        assert scheduler.schedule_day([job], forecast(temps), band) == 0


class TestColdestHoursScheduling:
    def test_moves_jobs_to_coldest_hour_in_window(self):
        scheduler = TemporalScheduler(energy_def())
        temps = [15.0, 14.0, 13.0, 5.0, 14.0, 15.0] + [16.0] * 18
        jobs = [deferrable_job(0, arrival_hour=0, deadline_hours=6.0)]
        deferred = scheduler.schedule_day(jobs, forecast(temps), None)
        assert deferred == 1
        assert jobs[0].scheduled_start_s == 3 * 3600.0

    def test_stays_if_arrival_hour_is_coldest(self):
        scheduler = TemporalScheduler(energy_def())
        temps = [5.0] + [15.0] * 23
        jobs = [deferrable_job(0, arrival_hour=0)]
        assert scheduler.schedule_day(jobs, forecast(temps), None) == 0


class TestNonePolicy:
    def test_none_policy_never_schedules(self):
        scheduler = TemporalScheduler(all_nd())
        jobs = [deferrable_job(0, 1)]
        assert scheduler.schedule_day(jobs, forecast([10.0] * 24), None) == 0
