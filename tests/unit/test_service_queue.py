"""Scheduler semantics against a fake pool (no real simulations).

These pin down the control-plane contracts deterministically: priority
ordering, cross-request dedupe, cancellation that never kills a shared
cell, admission control, and the retry/reset reliability path.  The
integration suite re-checks the headline behaviors with real worker
processes; here the pool is a stub so every interleaving is forced.
"""

import asyncio
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.analysis import experiments
from repro.service.jobs import AdmissionError, JobRegistry
from repro.service.scheduler import Scheduler
from repro.service.spec import CampaignSpec, CellSpec


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(experiments, "_memory_cache", {})
    return monkeypatch


class GatedPool:
    """A WorkerPool stand-in whose futures the test resolves by hand."""

    def __init__(self, workers=2):
        self.workers = workers
        self.generation = 0
        self.calls = []  # (task, future) in submission order
        self.resets = 0

    def submit(self, fn, task, use_disk_cache):
        future = Future()
        self.calls.append((task, future))
        return future

    def reset(self):
        self.resets += 1
        self.generation += 1

    def labels(self):
        return [task.label() for task, _ in self.calls]

    def resolve(self, index):
        task, future = self.calls[index]
        future.set_result({"label": task.label()})


class FailingPool(GatedPool):
    """Raises on the first ``fail_times`` submissions, then behaves."""

    def __init__(self, error, fail_times=1, **kwargs):
        super().__init__(**kwargs)
        self.error = error
        self.fail_times = fail_times

    def submit(self, fn, task, use_disk_cache):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise self.error
        future = super().submit(fn, task, use_disk_cache)
        future.set_result({"label": task.label()})
        return future


def cells_spec(*locations, system="baseline"):
    return CampaignSpec(
        kind="cells",
        cells=tuple(
            CellSpec(system=system, location=name) for name in locations
        ),
    )


async def settle(condition, timeout_s=5.0):
    """Spin the loop until ``condition()`` holds."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not condition():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never held")
        await asyncio.sleep(0.005)


class TestPriorityOrdering:
    def test_high_priority_overtakes_queued_cells(self, fresh_caches):
        async def run():
            pool = GatedPool()
            scheduler = Scheduler(pool, max_inflight=1, task_retries=0)
            registry = JobRegistry(max_jobs=8)
            low = registry.create(cells_spec("Newark", "Chad"), priority=0)
            high = registry.create(cells_spec("Santiago"), priority=5)
            scheduler.submit_job(low)
            await settle(lambda: len(pool.calls) == 1)
            scheduler.submit_job(high)  # Chad is still queued
            pool.resolve(0)
            await settle(lambda: len(pool.calls) == 2)
            pool.resolve(1)
            await settle(lambda: len(pool.calls) == 3)
            pool.resolve(2)
            await scheduler.drain()
            assert low.state == high.state == "completed"
            return pool.labels()

        labels = asyncio.run(run())
        assert labels == [
            "baseline @ Newark (facebook)",
            "baseline @ Santiago (facebook)",  # overtook Chad
            "baseline @ Chad (facebook)",
        ]


class TestDedupe:
    def test_shared_cell_simulates_once(self, fresh_caches):
        async def run():
            pool = GatedPool()
            scheduler = Scheduler(pool, max_inflight=4, task_retries=0)
            registry = JobRegistry(max_jobs=8)
            first = registry.create(cells_spec("Newark", "Chad"), priority=0)
            second = registry.create(cells_spec("Newark"), priority=0)
            events = second.subscribe()
            scheduler.submit_job(first)
            scheduler.submit_job(second)
            await settle(lambda: len(pool.calls) == 2)
            pool.resolve(0)
            pool.resolve(1)
            await scheduler.drain()
            return pool, scheduler, first, second, events

        pool, scheduler, first, second, events = asyncio.run(run())
        # Newark went to the pool exactly once despite two requesters.
        assert pool.labels().count("baseline @ Newark (facebook)") == 1
        assert scheduler.metrics.cells_deduped == 1
        assert scheduler.metrics.cells_executed == 2
        assert first.state == second.state == "completed"
        assert second.deduped == 1 and second.done == 1
        streamed = []
        while not events.empty():
            streamed.append(events.get_nowait())
        assert [e["event"] for e in streamed] == ["cell", "done"]
        assert streamed[0]["source"] == "deduped"

    def test_cached_cell_never_touches_the_pool(self, fresh_caches, monkeypatch):
        sentinel = object()
        monkeypatch.setattr(
            experiments, "load_cached", lambda key, **kw: sentinel
        )
        monkeypatch.setattr(
            experiments, "_result_to_json", lambda result: {"cached": True}
        )

        async def run():
            pool = GatedPool()
            scheduler = Scheduler(pool, task_retries=0)
            registry = JobRegistry(max_jobs=8)
            job = registry.create(cells_spec("Newark"), priority=0)
            scheduler.submit_job(job)
            await scheduler.drain()
            return pool, scheduler, job

        pool, scheduler, job = asyncio.run(run())
        assert pool.calls == []
        assert scheduler.metrics.cells_cached == 1
        assert job.state == "completed" and job.cached == 1
        assert job.result_payload()["cells"][0]["result"] == {"cached": True}


class TestCancellation:
    def test_cancel_keeps_shared_cell_alive(self, fresh_caches):
        async def run():
            pool = GatedPool()
            scheduler = Scheduler(pool, max_inflight=1, task_retries=0)
            registry = JobRegistry(max_jobs=8)
            big = registry.create(cells_spec("Newark", "Chad"), priority=0)
            small = registry.create(cells_spec("Newark"), priority=0)
            scheduler.submit_job(big)
            await settle(lambda: len(pool.calls) == 1)  # Newark running
            scheduler.submit_job(small)  # dedupes onto running Newark
            assert scheduler.cancel_job(big) is True
            assert scheduler.cancel_job(big) is False  # idempotent
            pool.resolve(0)
            await scheduler.drain()
            return pool, scheduler, big, small

        pool, scheduler, big, small = asyncio.run(run())
        # The running shared cell still delivered to the survivor...
        assert small.state == "completed" and small.done == 1
        assert big.state == "cancelled"
        # ...and big's exclusive pending cell was dropped, not run.
        assert pool.labels() == ["baseline @ Newark (facebook)"]
        assert scheduler.metrics.cells_skipped == 1
        assert scheduler.metrics.jobs_cancelled == 1


class TestAdmission:
    def test_registry_refuses_beyond_max_jobs(self, fresh_caches):
        registry = JobRegistry(max_jobs=1)
        job = registry.create(cells_spec("Newark"), priority=0)
        with pytest.raises(AdmissionError, match="capacity"):
            registry.create(cells_spec("Chad"), priority=0)
        job.cancel()  # finished jobs free their slot
        registry.create(cells_spec("Chad"), priority=0)

    def test_unknown_job_id(self, fresh_caches):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown job id"):
            JobRegistry(max_jobs=1).get("job-9999")


class TestReliability:
    def test_broken_pool_resets_once_and_retries(self, fresh_caches):
        async def run():
            pool = FailingPool(BrokenProcessPool("worker died"), fail_times=1)
            scheduler = Scheduler(
                pool, task_retries=1, backoff_s=0.001
            )
            registry = JobRegistry(max_jobs=8)
            job = registry.create(cells_spec("Newark"), priority=0)
            scheduler.submit_job(job)
            await scheduler.drain()
            return pool, scheduler, job

        pool, scheduler, job = asyncio.run(run())
        assert pool.resets == 1
        assert scheduler.metrics.pool_resets == 1
        assert job.state == "completed" and job.failed == 0
        assert scheduler.metrics.cells_executed == 1

    def test_exhausted_retries_fail_the_cell_not_the_job(self, fresh_caches):
        async def run():
            pool = FailingPool(ValueError("bad cell"), fail_times=99)
            scheduler = Scheduler(pool, task_retries=1, backoff_s=0.001)
            registry = JobRegistry(max_jobs=8)
            job = registry.create(cells_spec("Newark", "Chad"), priority=0)
            scheduler.submit_job(job)
            await scheduler.drain()
            return scheduler, job

        scheduler, job = asyncio.run(run())
        assert job.state == "completed"
        assert job.failed == 2 and job.done == 0
        assert scheduler.metrics.cells_failed == 2
        assert all(f["attempts"] == 2 for f in job.failures)
        assert job.result_payload()["failed"] == 2

    def test_timeout_resets_the_pool(self, fresh_caches):
        async def run():
            pool = GatedPool()
            scheduler = Scheduler(
                pool, task_retries=1, task_timeout_s=0.05, backoff_s=0.001
            )
            registry = JobRegistry(max_jobs=8)
            job = registry.create(cells_spec("Newark"), priority=0)
            scheduler.submit_job(job)
            # Never resolve the first future: the cell must time out,
            # reset the pool, and resubmit.
            await settle(lambda: len(pool.calls) == 2)
            pool.resolve(1)
            await scheduler.drain()
            return pool, scheduler, job

        pool, scheduler, job = asyncio.run(run())
        assert pool.resets == 1
        assert job.state == "completed" and job.done == 1
