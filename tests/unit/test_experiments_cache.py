"""Experiment-runner cache tests (repro.analysis.experiments)."""

import json

import pytest

from repro.analysis import experiments
from repro.sim.yearsim import YearResult


@pytest.fixture()
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path)
    monkeypatch.setattr(experiments, "_memory_cache", {})
    # These tests patch the scalar entry point (experiments.run_year), so
    # pin the scalar engine; lane-engine caching has its own tests.
    monkeypatch.setattr(experiments, "DEFAULT_SIM_ENGINE", "scalar")
    return tmp_path


def fake_result(label="All-ND", climate="Newark"):
    return YearResult(
        label=label,
        climate_name=climate,
        sampled_days=[0, 14],
        daily_worst_range_c=[5.0, 6.0],
        daily_outside_range_c=[10.0, 11.0],
        daily_avg_violation_c=[0.0, 0.1],
        daily_max_rate_c_per_hour=[4.0, 5.0],
        cooling_kwh=42.0,
        it_kwh=500.0,
    )


class TestSerialization:
    def test_roundtrip(self):
        result = fake_result()
        payload = experiments._result_to_json(result)
        # The payload must be plain JSON.
        restored = experiments._result_from_json(
            json.loads(json.dumps(payload))
        )
        assert restored.label == result.label
        assert restored.cooling_kwh == result.cooling_kwh
        assert restored.daily_worst_range_c == result.daily_worst_range_c
        assert restored.pue == result.pue


class TestCaching:
    def test_disk_cache_hit_skips_simulation(self, tmp_cache, monkeypatch):
        calls = []

        def fake_run_year(*args, **kwargs):
            calls.append(1)
            return fake_result()

        monkeypatch.setattr(experiments, "run_year", fake_run_year)
        monkeypatch.setattr(
            experiments, "trained_cooling_model", lambda **kw: object()
        )
        from repro.weather.locations import NEWARK

        first = experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 1
        # New memory cache, same disk cache: no new simulation.
        monkeypatch.setattr(experiments, "_memory_cache", {})
        second = experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 1
        assert second.cooling_kwh == first.cooling_kwh

    def test_memory_cache_returns_same_object(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year", lambda *a, **k: fake_result()
        )
        monkeypatch.setattr(
            experiments, "trained_cooling_model", lambda **kw: object()
        )
        from repro.weather.locations import NEWARK

        a = experiments.year_result("All-ND", NEWARK)
        b = experiments.year_result("All-ND", NEWARK)
        assert a is b

    def test_distinct_keys_for_bias_and_workload(self, tmp_cache, monkeypatch):
        calls = []
        monkeypatch.setattr(
            experiments,
            "run_year",
            lambda *a, **k: calls.append(1) or fake_result(),
        )
        monkeypatch.setattr(
            experiments, "trained_cooling_model", lambda **kw: object()
        )
        from repro.weather.locations import NEWARK

        experiments.year_result("All-ND", NEWARK)
        experiments.year_result("All-ND", NEWARK, forecast_bias_c=5.0)
        experiments.year_result("All-ND", NEWARK, workload="nutch")
        assert len(calls) == 3


class TestCacheVersioning:
    """Schema-versioned keys and corrupt-entry recovery."""

    def _count_runs(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            experiments,
            "run_year",
            lambda *a, **k: calls.append(1) or fake_result(),
        )
        monkeypatch.setattr(
            experiments, "trained_cooling_model", lambda **kw: object()
        )
        return calls

    def test_key_embeds_schema_version(self):
        from repro.weather.locations import NEWARK

        key = experiments.cache_key("baseline", NEWARK)
        assert key.endswith(f"-v{experiments.CACHE_SCHEMA_VERSION}")

    def test_key_embeds_engine_token(self):
        """Lane-engine and scalar results live in separate cache lineages."""
        from repro.weather.locations import NEWARK

        lanes_key = experiments.cache_key("baseline", NEWARK, engine="lanes")
        scalar_key = experiments.cache_key("baseline", NEWARK, engine="scalar")
        assert lanes_key != scalar_key
        assert "-elanes-" in lanes_key
        assert "-escalar-" in scalar_key

    def test_unknown_engine_rejected(self):
        from repro.weather.locations import NEWARK

        with pytest.raises(ValueError, match="unknown sim engine"):
            experiments.cache_key("baseline", NEWARK, engine="gpu")

    def test_parasol_keys_are_pre_backend_keys(self):
        """The default plant adds no token: old cache entries stay valid."""
        from repro.weather.locations import NEWARK

        key = experiments.cache_key("baseline", NEWARK)
        assert experiments.cache_key("baseline", NEWARK, plant="parasol") == key
        assert "-pparasol" not in key

    def test_non_parasol_plants_get_their_own_lineage(self):
        from repro.weather.locations import NEWARK

        keys = {
            plant: experiments.cache_key("baseline", NEWARK, plant=plant)
            for plant in ("parasol", "chiller", "cooling_tower", "hybrid")
        }
        assert len(set(keys.values())) == 4
        assert "-pchiller-" in keys["chiller"]
        assert "-pcooling_tower-" in keys["cooling_tower"]
        # Alternative plants ride the lane engine through their
        # lane-vectorized units, and the key records that.
        assert "-elanes-" in keys["chiller"]

    def test_non_parasol_plants_ride_the_lane_engine(self):
        for plant in ("parasol", "chiller", "cooling_tower", "hybrid"):
            assert experiments.effective_engine(
                "baseline", "lanes", plant=plant
            ) == "lanes"
        assert experiments.effective_engine(
            "baseline", "scalar", plant="chiller"
        ) == "scalar"

    def test_exotic_timing_config_falls_back_to_scalar(self):
        from repro.core.versions import ALL_VERSIONS

        config = ALL_VERSIONS["All-ND"]()
        assert experiments.effective_engine(config, "lanes") == "lanes"
        config.model_step_s = 60.0
        assert experiments.effective_engine(config, "lanes") == "scalar"

    def test_fingerprint_distinguishes_same_name_configs(self):
        from repro.core.versions import ALL_VERSIONS

        a = ALL_VERSIONS["All-ND"]()
        b = ALL_VERSIONS["All-ND"]()
        b.width_c = 10.0
        assert experiments.config_fingerprint(a) != (
            experiments.config_fingerprint(b)
        )
        assert experiments.config_fingerprint(a) == (
            experiments.config_fingerprint(ALL_VERSIONS["All-ND"]())
        )

    def test_corrupt_entry_recomputed_not_crashed(self, tmp_cache, monkeypatch):
        calls = self._count_runs(monkeypatch)
        from repro.weather.locations import NEWARK

        key = experiments.cache_key("All-ND", NEWARK)
        experiments.cache_path(key).parent.mkdir(exist_ok=True)
        experiments.cache_path(key).write_text("{not json")
        result = experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 1
        assert result.cooling_kwh == 42.0
        # The recompute repaired the entry on disk.
        monkeypatch.setattr(experiments, "_memory_cache", {})
        experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 1

    def test_stale_schema_version_is_a_miss(self, tmp_cache, monkeypatch):
        calls = self._count_runs(monkeypatch)
        from repro.weather.locations import NEWARK

        experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 1
        key = experiments.cache_key("All-ND", NEWARK)
        payload = json.loads(experiments.cache_path(key).read_text())
        payload["schema_version"] = experiments.CACHE_SCHEMA_VERSION - 1
        experiments.cache_path(key).write_text(json.dumps(payload))
        monkeypatch.setattr(experiments, "_memory_cache", {})
        experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 2

    def test_key_mismatch_is_a_miss(self, tmp_cache, monkeypatch):
        calls = self._count_runs(monkeypatch)
        from repro.weather.locations import NEWARK

        experiments.year_result("All-ND", NEWARK)
        key = experiments.cache_key("All-ND", NEWARK)
        payload = json.loads(experiments.cache_path(key).read_text())
        payload["key"] = "someone-else"
        experiments.cache_path(key).write_text(json.dumps(payload))
        monkeypatch.setattr(experiments, "_memory_cache", {})
        experiments.year_result("All-ND", NEWARK)
        assert len(calls) == 2

    def test_writes_are_atomic_and_leave_no_temp_files(
        self, tmp_cache, monkeypatch
    ):
        self._count_runs(monkeypatch)
        from repro.weather.locations import NEWARK

        experiments.year_result("All-ND", NEWARK)
        leftovers = [
            p for p in tmp_cache.iterdir() if not p.name.endswith(".json")
        ]
        assert leftovers == []


class TestTraceHelpers:
    def test_facebook_trace_cached(self):
        a = experiments.facebook_trace()
        b = experiments.facebook_trace()
        assert a is b

    def test_deferrable_is_distinct(self):
        assert experiments.facebook_trace() is not experiments.facebook_trace(
            deferrable=True
        )

    def test_nutch_trace(self):
        trace = experiments.nutch_trace()
        assert trace.name == "nutch"
