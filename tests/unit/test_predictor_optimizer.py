"""Cooling Predictor and Optimizer tests."""

import numpy as np
import pytest

from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.core.band import TemperatureBand
from repro.core.config import CoolAirConfig
from repro.core.optimizer import (
    CoolingOptimizer,
    abrupt_candidates,
    smooth_candidates,
)
from repro.core.predictor import CoolingPredictor, PredictorState
from repro.core.utility import UtilityFunction
from repro.core.versions import all_nd, variation_version
from repro.errors import ConfigError


def state(temps=(26.0, 26.5, 27.0, 27.5), mode=CoolingMode.FREE_COOLING,
          fan=0.4, outside=15.0, w_in=0.008, w_out=0.006, util=0.5):
    temps = list(temps)
    return PredictorState(
        mode=mode,
        fan_speed=fan if mode is CoolingMode.FREE_COOLING else 0.0,
        sensor_temps_c=temps,
        prev_sensor_temps_c=[t + 0.1 for t in temps],
        outside_temp_c=outside,
        prev_outside_temp_c=outside,
        prev_fan_speed=fan,
        utilization=util,
        inside_mixing_ratio=w_in,
        outside_mixing_ratio=w_out,
    )


class TestPredictor:
    def test_prediction_shape(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        result = predictor.predict(state(), CoolingCommand.free_cooling(0.5), 5)
        assert result.sensor_temps_c.shape == (5, 4)
        assert result.rh_pct.shape == (5,)

    def test_free_cooling_cools_toward_outside(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        hot = state(temps=(32.0, 32.5, 33.0, 33.5), outside=10.0)
        result = predictor.predict(hot, CoolingCommand.free_cooling(1.0), 5)
        assert float(result.sensor_temps_c[-1].mean()) < 30.0

    def test_closed_warms_cold_container(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        cold = state(temps=(15.0, 15.5, 16.0, 16.5), mode=CoolingMode.CLOSED,
                     fan=0.0, outside=5.0)
        result = predictor.predict(cold, CoolingCommand.closed(), 5)
        assert float(result.sensor_temps_c[-1].mean()) > 15.5

    def test_compressor_duty_interpolates(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        hot = state(temps=(32.0, 32.0, 32.0, 32.0), outside=33.0)
        full = predictor.predict(hot, CoolingCommand.ac(1.0), 5)
        half = predictor.predict(hot, CoolingCommand.ac(0.5), 5)
        off = predictor.predict(hot, CoolingCommand.ac(0.0), 5)
        t_full = float(full.sensor_temps_c[-1].mean())
        t_half = float(half.sensor_temps_c[-1].mean())
        t_off = float(off.sensor_temps_c[-1].mean())
        assert t_full < t_half < t_off
        # The paper interpolates the *one-step* models; check exact
        # midpoint behaviour at a single step (iterated trajectories
        # compose nonlinearly).
        full1 = predictor.predict(hot, CoolingCommand.ac(1.0), 1)
        half1 = predictor.predict(hot, CoolingCommand.ac(0.5), 1)
        off1 = predictor.predict(hot, CoolingCommand.ac(0.0), 1)
        midpoint = (full1.sensor_temps_c[0] + off1.sensor_temps_c[0]) / 2.0
        assert half1.sensor_temps_c[0] == pytest.approx(midpoint, abs=1e-9)

    def test_energy_prediction_orders_regimes(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        s = state()
        closed = predictor.predict(s, CoolingCommand.closed(), 5)
        fc = predictor.predict(s, CoolingCommand.free_cooling(1.0), 5)
        ac = predictor.predict(s, CoolingCommand.ac(1.0), 5)
        assert closed.cooling_energy_kwh == 0.0
        assert 0.0 < fc.cooling_energy_kwh < ac.cooling_energy_kwh

    def test_ac_full_speed_flag(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        full = predictor.predict(state(), CoolingCommand.ac(1.0), 5)
        # Partial compressor duty with a partial fan is not "full speed"...
        partial = predictor.predict(
            state(), CoolingCommand.ac(0.5, fan_speed=0.8), 5
        )
        # ...but the fixed-speed fan running flat out is, even without the
        # compressor (Section 3.2's penalty applies to the unit).
        fan_full = predictor.predict(
            state(), CoolingCommand.ac(0.0, fan_speed=1.0), 5
        )
        assert full.ac_at_full_speed
        assert not partial.ac_at_full_speed
        assert fan_full.ac_at_full_speed

    def test_validation(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        with pytest.raises(ConfigError):
            predictor.predict(state(), CoolingCommand.closed(), 0)
        bad = state(temps=(26.0,))
        with pytest.raises(ConfigError):
            predictor.predict(bad, CoolingCommand.closed(), 5)


class TestCandidateSets:
    def test_abrupt_candidates_respect_hardware(self):
        commands = abrupt_candidates()
        fc_speeds = [c.fc_fan_speed for c in commands
                     if c.mode is CoolingMode.FREE_COOLING]
        assert min(fc_speeds) >= 0.15
        duties = {c.ac_compressor_duty for c in commands
                  if c.mode is CoolingMode.AC_ON}
        assert duties == {1.0}  # on/off compressor only

    def test_smooth_candidates_include_low_speeds_and_duties(self):
        commands = smooth_candidates()
        fc_speeds = [c.fc_fan_speed for c in commands
                     if c.mode is CoolingMode.FREE_COOLING]
        assert min(fc_speeds) <= 0.01 + 1e-9
        duties = {c.ac_compressor_duty for c in commands
                  if c.mode is CoolingMode.AC_ON}
        assert 0.25 in duties and 0.5 in duties

    def test_smooth_candidates_near_current_speed(self):
        commands = smooth_candidates(current_fc_speed=0.4)
        fc_speeds = [c.fc_fan_speed for c in commands
                     if c.mode is CoolingMode.FREE_COOLING]
        assert any(abs(s - 0.42) < 1e-9 or abs(s - 0.38) < 1e-9 for s in fc_speeds)


class TestOptimizer:
    def make(self, cooling_model, config=None, smooth=True):
        config = config or all_nd()
        predictor = CoolingPredictor(cooling_model)
        return CoolingOptimizer(
            config, predictor, UtilityFunction(config), smooth_hardware=smooth
        )

    def test_hot_container_gets_cooled(self, cooling_model):
        optimizer = self.make(cooling_model)
        hot = state(temps=(33.0, 33.5, 34.0, 34.5), outside=18.0)
        command = optimizer.decide(hot, TemperatureBand(25.0, 30.0))
        assert command.mode is CoolingMode.FREE_COOLING

    def test_cold_container_gets_closed(self, cooling_model):
        optimizer = self.make(cooling_model)
        cold = state(temps=(18.0, 18.5, 19.0, 19.5), mode=CoolingMode.CLOSED,
                     fan=0.0, outside=5.0)
        command = optimizer.decide(cold, TemperatureBand(25.0, 30.0))
        assert command.mode is CoolingMode.CLOSED

    def test_in_band_prefers_cheap_regime(self, cooling_model):
        optimizer = self.make(cooling_model)
        ok = state(temps=(27.0, 27.2, 27.4, 27.6), outside=20.0)
        command = optimizer.decide(ok, TemperatureBand(25.0, 30.0))
        # Whatever it picks, it must not be the expensive full-blast AC.
        assert not (
            command.mode is CoolingMode.AC_ON and command.ac_compressor_duty == 1.0
        )

    def test_scores_recorded(self, cooling_model):
        optimizer = self.make(cooling_model)
        optimizer.decide(state(), TemperatureBand(25.0, 30.0))
        assert len(optimizer.last_scores) >= 8
        assert all(score >= 0 for _, score in optimizer.last_scores)

    def test_active_sensor_restriction(self, cooling_model):
        """Scoring only a subset of sensors must be accepted and respected."""
        optimizer = self.make(cooling_model)
        s = state(temps=(35.0, 27.0, 27.0, 27.0), outside=18.0)
        # Only sensor 1..3 are active: the hot sensor 0 is ignored.
        command = optimizer.decide(
            s, TemperatureBand(25.0, 30.0), active_sensor_indices=[1, 2, 3]
        )
        assert command is not None

    def test_hot_day_uses_ac_when_fc_cannot_help(self, cooling_model):
        optimizer = self.make(cooling_model)
        hot = state(temps=(33.0, 33.5, 34.0, 34.5), outside=38.0, w_out=0.012)
        command = optimizer.decide(hot, TemperatureBand(25.0, 30.0))
        assert command.mode in (CoolingMode.AC_ON, CoolingMode.FREE_COOLING)
        if command.mode is CoolingMode.AC_ON:
            assert command.ac_compressor_duty > 0.0
