"""Parallel campaign runner tests (repro.analysis.runner).

The pool tests monkeypatch the simulation entry points and rely on the
``fork`` start method to carry the patches into workers, so they skip on
platforms that spawn.
"""

import multiprocessing

import pytest

from repro.analysis import experiments, runner
from repro.errors import ReproError
from repro.sim.yearsim import YearResult
from repro.weather.locations import ICELAND, NEWARK, SANTIAGO

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool tests need fork to inherit monkeypatched state",
)


@pytest.fixture()
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path)
    monkeypatch.setattr(experiments, "_memory_cache", {})
    # These tests patch the scalar entry point (experiments.run_year), so
    # pin the scalar engine; the lane-chunked path has its own tests.
    monkeypatch.setattr(experiments, "DEFAULT_SIM_ENGINE", "scalar")
    return tmp_path


def fake_result(label="Baseline", climate="Newark"):
    return YearResult(
        label=label,
        climate_name=climate,
        sampled_days=[0, 183],
        daily_worst_range_c=[5.0, 6.0],
        daily_outside_range_c=[10.0, 11.0],
        daily_avg_violation_c=[0.0, 0.1],
        daily_max_rate_c_per_hour=[4.0, 5.0],
        cooling_kwh=42.0,
        it_kwh=500.0,
    )


def baseline_tasks(*climates):
    return [runner.YearTask("baseline", c) for c in climates]


class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert runner.resolve_workers(3) == 3

    def test_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert runner.resolve_workers() == 5

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os

        assert runner.resolve_workers() == (os.cpu_count() or 1)

    def test_invalid_env_is_clean_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ReproError, match="REPRO_WORKERS"):
            runner.resolve_workers()

    @pytest.mark.parametrize("bad", [0, -2])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ReproError, match=">= 1"):
            runner.resolve_workers(bad)


class TestSerialPath:
    def test_workers_1_never_builds_a_pool(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )

        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("pool built on the serial path")

        monkeypatch.setattr(runner, "ProcessPoolExecutor", boom)
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=1
        )
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]

    def test_single_pending_task_stays_in_process(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year", lambda *a, **k: fake_result()
        )
        monkeypatch.setattr(
            runner, "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("pool built for one task"),
        )
        (result,) = runner.run_year_tasks(baseline_tasks(NEWARK), workers=8)
        assert result.cooling_kwh == 42.0

    def test_progress_ticks_every_task(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year", lambda *a, **k: fake_result()
        )
        seen = []
        runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO),
            workers=1,
            progress=lambda done, total, task: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_cached_cells_skip_simulation(self, tmp_cache, monkeypatch):
        calls = []
        monkeypatch.setattr(
            experiments, "run_year",
            lambda *a, **k: calls.append(1) or fake_result(),
        )
        tasks = baseline_tasks(NEWARK, SANTIAGO)
        runner.run_year_tasks(tasks, workers=1)
        assert len(calls) == 2
        runner.run_year_tasks(tasks, workers=1)
        assert len(calls) == 2


@fork_only
class TestPoolPath:
    def test_results_come_back_in_task_order(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        tasks = baseline_tasks(NEWARK, SANTIAGO, ICELAND)
        results = runner.run_year_tasks(tasks, workers=2)
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]

    def test_workers_persist_to_the_shared_disk_cache(
        self, tmp_cache, monkeypatch
    ):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        tasks = baseline_tasks(NEWARK, SANTIAGO)
        runner.run_year_tasks(tasks, workers=2)
        assert len(list(tmp_cache.glob("*.json"))) == 2
        # A cold process (fresh memory cache) is served from disk.
        monkeypatch.setattr(experiments, "_memory_cache", {})
        monkeypatch.setattr(
            experiments, "run_year",
            lambda *a, **k: pytest.fail("disk cache missed"),
        )
        results = runner.run_year_tasks(tasks, workers=2)
        assert results[1].climate_name == "Santiago"

    def test_parallel_matches_serial(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        tasks = baseline_tasks(NEWARK, SANTIAGO, ICELAND)
        serial = runner.run_year_tasks(tasks, workers=1, use_disk_cache=False)
        monkeypatch.setattr(experiments, "_memory_cache", {})
        parallel = runner.run_year_tasks(tasks, workers=3, use_disk_cache=False)
        import dataclasses

        for a, b in zip(serial, parallel):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


@pytest.fixture()
def lane_cache(tmp_path, monkeypatch):
    """Like ``tmp_cache`` but with the lane engine left on."""
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path)
    monkeypatch.setattr(experiments, "_memory_cache", {})
    monkeypatch.setattr(experiments, "DEFAULT_SIM_ENGINE", "lanes")
    return tmp_path


class TestResolveLanes:
    def test_explicit_wins_over_default(self, monkeypatch):
        monkeypatch.setattr(experiments, "DEFAULT_LANES", 4)
        assert runner.resolve_lanes(2) == 2

    def test_defaults_to_repro_lanes(self, monkeypatch):
        monkeypatch.setattr(experiments, "DEFAULT_LANES", 6)
        assert runner.resolve_lanes() == 6

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ReproError, match=">= 1"):
            runner.resolve_lanes(bad)


class TestLaneChunking:
    """Uncached lane-compatible cells batch into lockstep chunks."""

    def _record_chunks(self, monkeypatch):
        chunks = []

        def fake_chunk(chunk, use_disk_cache):
            chunks.append(list(chunk))
            results = [
                fake_result(climate=task.climate.name) for task in chunk
            ]
            # Mirror the real chunk runner's cache writes.
            for task, result in zip(chunk, results):
                key = experiments.cache_key(
                    task.system,
                    task.climate,
                    task.workload,
                    task.deferrable,
                    task.sample_every_days,
                    task.forecast_bias_c,
                    "lanes",
                )
                experiments.store_result(key, result, use_disk_cache)
            return results

        monkeypatch.setattr(runner, "_run_lane_chunk", fake_chunk)
        monkeypatch.setattr(
            runner,
            "_run_task",
            lambda *a, **k: pytest.fail("cell bypassed the lane engine"),
        )
        return chunks

    def test_group_splits_into_lane_sized_chunks(
        self, lane_cache, monkeypatch
    ):
        chunks = self._record_chunks(monkeypatch)
        tasks = baseline_tasks(NEWARK, SANTIAGO, ICELAND)
        results = runner.run_year_tasks(tasks, workers=1, lanes=2)
        assert [len(c) for c in chunks] == [2, 1]
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]

    def test_chunks_grouped_by_sampling_stride(self, lane_cache, monkeypatch):
        chunks = self._record_chunks(monkeypatch)
        tasks = [
            runner.YearTask("baseline", NEWARK, sample_every_days=7),
            runner.YearTask("baseline", SANTIAGO, sample_every_days=30),
            runner.YearTask("baseline", ICELAND, sample_every_days=7),
        ]
        runner.run_year_tasks(tasks, workers=1, lanes=8)
        strides = sorted(
            tuple(t.sample_every_days for t in chunk) for chunk in chunks
        )
        assert strides == [(7, 7), (30,)]

    def test_lanes_1_restores_per_cell_runs(self, lane_cache, monkeypatch):
        monkeypatch.setattr(
            runner,
            "_run_lane_chunk",
            lambda *a, **k: pytest.fail("lane chunk built with lanes=1"),
        )
        monkeypatch.setattr(
            experiments,
            "run_year",
            lambda system, climate, *a, **k: fake_result(
                climate=climate.name
            ),
        )
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO), workers=1, lanes=1
        )
        assert [r.climate_name for r in results] == ["Newark", "Santiago"]

    def test_scalar_engine_skips_lane_batching(self, lane_cache, monkeypatch):
        monkeypatch.setattr(experiments, "DEFAULT_SIM_ENGINE", "scalar")
        monkeypatch.setattr(
            runner,
            "_run_lane_chunk",
            lambda *a, **k: pytest.fail("lane chunk built on scalar engine"),
        )
        monkeypatch.setattr(
            experiments, "run_year", lambda *a, **k: fake_result()
        )
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO), workers=1, lanes=4
        )
        assert len(results) == 2

    def test_cached_cells_never_reach_a_chunk(self, lane_cache, monkeypatch):
        chunks = self._record_chunks(monkeypatch)
        tasks = baseline_tasks(NEWARK, SANTIAGO)
        runner.run_year_tasks(tasks, workers=1, lanes=4)
        assert [len(c) for c in chunks] == [2]
        # Second run: everything is served from the cache.
        runner.run_year_tasks(tasks, workers=1, lanes=4)
        assert [len(c) for c in chunks] == [2]

    @fork_only
    def test_pool_chunks_spread_across_workers(self, lane_cache, monkeypatch):
        chunks = self._record_chunks(monkeypatch)
        tasks = baseline_tasks(NEWARK, SANTIAGO, ICELAND)
        # 3 lane-compatible cells, 2 workers, 8 lanes: ceil(3/2)=2 per
        # chunk, so both workers get work instead of one 3-lane batch.
        results = runner.run_year_tasks(tasks, workers=2, lanes=8)
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]
        # The fakes ran in forked workers; the parent's recorder stays
        # empty, which itself proves the pool path was taken.
        assert chunks == []


class TestFailureKnobResolvers:
    def test_retries_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        assert runner.resolve_task_retries(0) == 0

    def test_retries_env_parsed_and_defaulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        assert runner.resolve_task_retries() == 3
        monkeypatch.delenv("REPRO_TASK_RETRIES")
        assert runner.resolve_task_retries() == 1

    def test_retries_invalid_env_is_clean_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
        with pytest.raises(ReproError, match="REPRO_TASK_RETRIES"):
            runner.resolve_task_retries()

    def test_retries_rejects_negative(self):
        with pytest.raises(ReproError, match=">= 0"):
            runner.resolve_task_retries(-1)

    def test_timeout_env_and_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT_S", "2.5")
        assert runner.resolve_task_timeout() == 2.5
        assert runner.resolve_task_timeout(0) is None  # non-positive disables
        monkeypatch.delenv("REPRO_TASK_TIMEOUT_S")
        assert runner.resolve_task_timeout() is None


class TestSerialFailureHandling:
    def test_retry_then_success(self, tmp_cache, monkeypatch):
        calls = []

        def flaky(system, climate, *a, **k):
            calls.append(climate.name)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", flaky)
        retried = []
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK), workers=1, task_retries=1,
            backoff_s=0.0, retried=retried,
        )
        assert results[0].climate_name == "Newark"
        assert len(calls) == 2
        assert retried == ["baseline @ Newark (facebook)"]

    def test_exhausted_retries_raise_with_task_identity(
        self, tmp_cache, monkeypatch
    ):
        def always_fails(*a, **k):
            raise RuntimeError("bad cell")

        monkeypatch.setattr(experiments, "run_year", always_fails)
        from repro.errors import TaskExecutionError

        with pytest.raises(TaskExecutionError, match="baseline @ Newark"):
            runner.run_year_tasks(
                baseline_tasks(NEWARK), workers=1, task_retries=1,
                backoff_s=0.0,
            )

    def test_failures_list_collects_instead_of_raising(
        self, tmp_cache, monkeypatch
    ):
        def santiago_fails(system, climate, *a, **k):
            if climate.name == "Santiago":
                raise RuntimeError("bad cell")
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", santiago_fails)
        failures = []
        seen = []
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=1,
            task_retries=0, backoff_s=0.0, failures=failures,
            progress=lambda done, total, task: seen.append((done, total)),
        )
        assert [r.climate_name if r else None for r in results] == [
            "Newark", None, "Iceland",
        ]
        (failure,) = failures
        assert "Santiago" in failure.label()
        assert "bad cell" in failure.error
        # Progress still reaches total: failed cells tick too.
        assert seen[-1] == (3, 3)


@fork_only
class TestPoolFailureHandling:
    def test_pool_failure_carries_identity_and_is_collected(
        self, tmp_cache, monkeypatch
    ):
        def santiago_fails(system, climate, *a, **k):
            if climate.name == "Santiago":
                raise RuntimeError("bad cell")
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", santiago_fails)
        failures = []
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=2,
            task_retries=0, backoff_s=0.0, failures=failures,
        )
        assert [r.climate_name if r else None for r in results] == [
            "Newark", None, "Iceland",
        ]
        (failure,) = failures
        assert "Santiago" in failure.label()

    def test_pool_retry_recovers_transient_failure(
        self, tmp_cache, tmp_path, monkeypatch
    ):
        flag = tmp_path / "failed-once"

        def flaky(system, climate, *a, **k):
            if climate.name == "Santiago" and not flag.exists():
                flag.write_text("x")
                raise RuntimeError("transient")
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", flaky)
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=2,
            task_retries=1, backoff_s=0.0,
        )
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]

    def test_worker_crash_recovers_unfinished_cells_serially(
        self, tmp_cache, tmp_path, monkeypatch
    ):
        import os

        flag = tmp_path / "crashed-once"

        def crashing(system, climate, *a, **k):
            if climate.name == "Santiago" and not flag.exists():
                flag.write_text("x")
                os._exit(1)  # hard crash: BrokenProcessPool in the parent
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", crashing)
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=2,
            task_retries=1, backoff_s=0.0,
        )
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]

    def test_stalled_pool_times_out_and_recovers_serially(
        self, tmp_cache, monkeypatch
    ):
        import os
        import time

        parent_pid = os.getpid()

        def hangs_in_workers(system, climate, *a, **k):
            if os.getpid() != parent_pid:
                time.sleep(3.0)  # longer than the timeout below
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", hangs_in_workers)
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO), workers=2,
            task_timeout_s=0.3, backoff_s=0.0,
        )
        assert [r.climate_name for r in results] == ["Newark", "Santiago"]

    def test_crash_recovery_prefers_cells_the_worker_persisted(
        self, tmp_cache, tmp_path, monkeypatch
    ):
        """A cell persisted by a dying worker is never recomputed."""
        import os

        flag = tmp_path / "crashed-once"
        parent_pid = os.getpid()
        parent_calls = []

        def persist_then_crash(system, climate, *a, **k):
            result = fake_result(climate=climate.name)
            if climate.name == "Santiago":
                if os.getpid() == parent_pid:
                    parent_calls.append(climate.name)
                elif not flag.exists():
                    flag.write_text("x")
                    # Simulate a worker that wrote its cache entry and
                    # then died before reporting the result back.
                    key = experiments.cache_key(
                        system, climate, "facebook", False, None, 0.0
                    )
                    experiments._write_disk_entry(key, result)
                    os._exit(1)
            return result

        monkeypatch.setattr(experiments, "run_year", persist_then_crash)
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=2,
            task_retries=1, backoff_s=0.0,
        )
        assert [r.climate_name for r in results] == [
            "Newark", "Santiago", "Iceland",
        ]
        assert parent_calls == []  # served from the persisted cache entry


class TestResolveMpContext:
    def test_env_and_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
        assert runner.resolve_mp_context() == "spawn"
        available = multiprocessing.get_all_start_methods()[0]
        assert runner.resolve_mp_context(available) == available
        monkeypatch.delenv("REPRO_MP_CONTEXT")
        assert runner.resolve_mp_context() is None

    def test_invalid_is_clean_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_CONTEXT", raising=False)
        with pytest.raises(ReproError, match="mp context"):
            runner.resolve_mp_context("threads")


class TestWarmSharedState:
    """The pre-pool warm pass trains every distinct model the tasks need."""

    def _record_models(self, monkeypatch):
        import repro.sim.campaign as campaign

        calls = []
        monkeypatch.setattr(
            campaign,
            "trained_cooling_model",
            lambda *a, **k: calls.append(tuple(k.get("log_gaps", ())))
            or object(),
        )
        monkeypatch.setattr(
            experiments, "facebook_trace", lambda deferrable=False: None
        )
        monkeypatch.setattr(
            experiments, "nutch_trace", lambda deferrable=False: None
        )
        return calls

    def _gapped_config(self):
        import dataclasses

        from repro.core.versions import ALL_VERSIONS
        from repro.faults import FaultSchedule, LogGapFault

        gap = LogGapFault(drop_mode="free_cooling")
        config = dataclasses.replace(
            ALL_VERSIONS["All-ND"](), faults=FaultSchedule(log_gaps=(gap,))
        )
        return config, gap

    def test_baseline_only_trains_nothing(self, monkeypatch):
        calls = self._record_models(monkeypatch)
        runner._warm_shared_state(baseline_tasks(NEWARK, SANTIAGO))
        assert calls == []

    def test_warms_every_distinct_model_key_once(self, monkeypatch):
        calls = self._record_models(monkeypatch)
        gapped, gap = self._gapped_config()
        runner._warm_shared_state([
            runner.YearTask("baseline", NEWARK),
            runner.YearTask("All-ND", NEWARK),
            runner.YearTask(gapped, SANTIAGO),
            runner.YearTask(gapped, NEWARK),  # same gap key: warmed once
            runner.YearTask("Energy", ICELAND),  # same default key
        ])
        assert sorted(calls, key=len) == [(), (gap,)]

    def test_gapped_only_tasks_skip_the_default_model(self, monkeypatch):
        """Before the fix, only the default model was ever warmed — and
        gapped cells retrained their degraded model in every worker."""
        calls = self._record_models(monkeypatch)
        gapped, gap = self._gapped_config()
        runner._warm_shared_state([runner.YearTask(gapped, NEWARK)])
        assert calls == [(gap,)]


class TestStreaming:
    def test_keep_results_false_streams_and_drops(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        seen = []
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND),
            workers=1,
            keep_results=False,
            consume=lambda i, task, result: seen.append(
                (i, result.climate_name)
            ),
        )
        assert results == [None, None, None]
        assert sorted(seen) == [
            (0, "Newark"), (1, "Santiago"), (2, "Iceland"),
        ]

    def test_consume_includes_cache_hits(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        tasks = baseline_tasks(NEWARK, SANTIAGO)
        runner.run_year_tasks(tasks, workers=1)
        monkeypatch.setattr(
            experiments, "run_year",
            lambda *a, **k: pytest.fail("cache hit recomputed"),
        )
        seen = []
        runner.run_year_tasks(
            tasks,
            workers=1,
            keep_results=False,
            consume=lambda i, task, result: seen.append(result.climate_name),
        )
        assert sorted(seen) == ["Newark", "Santiago"]

    def test_keep_results_false_skips_memory_seeding(
        self, tmp_cache, monkeypatch
    ):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        tasks = baseline_tasks(NEWARK, SANTIAGO)
        runner.run_year_tasks(tasks, workers=1)
        # Disk entries exist; a fresh memory cache must stay empty when
        # the cells are served in streaming mode.
        monkeypatch.setattr(experiments, "_memory_cache", {})
        runner.run_year_tasks(
            tasks, workers=1, keep_results=False, consume=lambda *a: None
        )
        assert experiments._memory_cache == {}

    def test_failed_cells_never_reach_consume(self, tmp_cache, monkeypatch):
        def santiago_fails(system, climate, *a, **k):
            if climate.name == "Santiago":
                raise RuntimeError("bad cell")
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", santiago_fails)
        failures = []
        seen = []
        runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND),
            workers=1, task_retries=0, backoff_s=0.0, failures=failures,
            keep_results=False,
            consume=lambda i, task, result: seen.append(result.climate_name),
        )
        assert sorted(seen) == ["Iceland", "Newark"]
        assert len(failures) == 1

    @fork_only
    def test_pool_streaming_consumes_every_cell(self, tmp_cache, monkeypatch):
        monkeypatch.setattr(
            experiments, "run_year",
            lambda system, climate, *a, **k: fake_result(climate=climate.name),
        )
        seen = []
        results = runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND),
            workers=2,
            keep_results=False,
            consume=lambda i, task, result: seen.append(
                (i, result.climate_name)
            ),
        )
        assert results == [None, None, None]
        assert sorted(seen) == [
            (0, "Newark"), (1, "Santiago"), (2, "Iceland"),
        ]
        # No memory seeding happened in streaming mode.
        assert experiments._memory_cache == {}

    @fork_only
    def test_crash_recovery_still_streams_each_cell_once(
        self, tmp_cache, tmp_path, monkeypatch
    ):
        import os

        flag = tmp_path / "crashed-once"

        def crashing(system, climate, *a, **k):
            if climate.name == "Santiago" and not flag.exists():
                flag.write_text("x")
                os._exit(1)
            return fake_result(climate=climate.name)

        monkeypatch.setattr(experiments, "run_year", crashing)
        seen = []
        runner.run_year_tasks(
            baseline_tasks(NEWARK, SANTIAGO, ICELAND), workers=2,
            task_retries=1, backoff_s=0.0, keep_results=False,
            consume=lambda i, task, result: seen.append(result.climate_name),
        )
        assert sorted(seen) == ["Iceland", "Newark", "Santiago"]


class TestYearTask:
    def test_label(self):
        task = runner.YearTask("baseline", NEWARK, workload="nutch")
        assert task.label() == "baseline @ Newark (nutch)"

    def test_is_picklable(self):
        import pickle

        from repro.core.versions import ALL_VERSIONS

        task = runner.YearTask(ALL_VERSIONS["All-ND"](), NEWARK)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.system.name == "All-ND"
        assert clone.climate.name == "Newark"
