"""Property-based tests on utility-function invariants.

The Cooling Optimizer's correctness rests on a few monotonicity
properties: worse trajectories must never score better.  These are the
invariants hypothesis hammers here.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.band import TemperatureBand
from repro.core.config import CoolAirConfig
from repro.core.utility import RegimePrediction, UtilityFunction

BAND = TemperatureBand(25.0, 30.0)
HORIZON = 600.0


def prediction(temps, rh=50.0, energy=0.0, ac_full=False):
    temps = np.asarray(temps, dtype=float)
    return RegimePrediction(
        sensor_temps_c=temps,
        rh_pct=np.full(temps.shape[0], float(rh)),
        cooling_energy_kwh=energy,
        ac_at_full_speed=ac_full,
    )


@pytest.fixture(scope="module")
def utility():
    return UtilityFunction(CoolAirConfig())


temps_inside = st.floats(min_value=25.0, max_value=30.0)
temps_any = st.floats(min_value=5.0, max_value=45.0)


class TestMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(base=temps_inside, excess=st.floats(min_value=0.1, max_value=15.0))
    def test_further_above_band_scores_worse(self, utility, base, excess):
        inside = prediction(np.full((5, 2), base))
        above = prediction(np.full((5, 2), BAND.high_c + excess))
        worse = prediction(np.full((5, 2), BAND.high_c + excess + 1.0))
        s_in = utility.score(inside, BAND, [base] * 2, HORIZON)
        s_above = utility.score(
            above, BAND, [BAND.high_c + excess] * 2, HORIZON
        )
        s_worse = utility.score(
            worse, BAND, [BAND.high_c + excess + 1.0] * 2, HORIZON
        )
        assert s_in <= s_above < s_worse

    @settings(max_examples=40, deadline=None)
    @given(
        temp=temps_inside,
        energy_a=st.floats(min_value=0.0, max_value=0.4),
        extra=st.floats(min_value=0.001, max_value=0.4),
    )
    def test_more_energy_never_scores_better(self, utility, temp, energy_a, extra):
        cheap = prediction(np.full((5, 2), temp), energy=energy_a)
        costly = prediction(np.full((5, 2), temp), energy=energy_a + extra)
        s_cheap = utility.score(cheap, BAND, [temp] * 2, HORIZON)
        s_costly = utility.score(costly, BAND, [temp] * 2, HORIZON)
        assert s_costly > s_cheap

    @settings(max_examples=40, deadline=None)
    @given(
        temp=temps_inside,
        rh_a=st.floats(min_value=0.0, max_value=95.0),
        extra=st.floats(min_value=0.5, max_value=5.0),
    )
    def test_more_humidity_never_scores_better(self, utility, temp, rh_a, extra):
        drier = prediction(np.full((5, 2), temp), rh=rh_a)
        damper = prediction(np.full((5, 2), temp), rh=min(100.0, rh_a + extra))
        s_dry = utility.score(drier, BAND, [temp] * 2, HORIZON)
        s_damp = utility.score(damper, BAND, [temp] * 2, HORIZON)
        assert s_damp >= s_dry

    @settings(max_examples=40, deadline=None)
    @given(temp=temps_any)
    def test_ac_full_speed_never_helps(self, utility, temp):
        quiet = prediction(np.full((5, 2), temp))
        blasting = prediction(np.full((5, 2), temp), ac_full=True)
        s_quiet = utility.score(quiet, BAND, [temp] * 2, HORIZON)
        s_blast = utility.score(blasting, BAND, [temp] * 2, HORIZON)
        assert s_blast > s_quiet


class TestScaleInvariants:
    @settings(max_examples=30, deadline=None)
    @given(temp=temps_any)
    def test_score_finite_and_nonnegative(self, utility, temp):
        p = prediction(np.full((5, 2), temp))
        score = utility.score(p, BAND, [temp] * 2, HORIZON)
        assert np.isfinite(score)
        assert score >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        temp=st.floats(min_value=31.0, max_value=40.0),
        sensors=st.integers(min_value=1, max_value=6),
    )
    def test_penalty_scales_with_sensor_count(self, temp, sensors):
        """More violating sensors -> proportionally more penalty (the
        'sum over the sensors of all active pods' of Section 3.2)."""
        utility = UtilityFunction(CoolAirConfig())
        one = prediction(np.full((5, 1), temp))
        many = prediction(np.full((5, sensors), temp))
        s_one = utility.score(one, BAND, [temp], HORIZON)
        s_many = utility.score(many, BAND, [temp] * sensors, HORIZON)
        assert s_many == pytest.approx(sensors * s_one, rel=1e-9)
