"""Table 1 versions, Cooling Configurers, and the CoolAir manager."""

import pytest

from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.cooling.tks import TKSController
from repro.cooling.units import AbruptCoolingUnits
from repro.core.band import TemperatureBand
from repro.core.config import BandMode, PlacementStrategy, TemporalPolicy
from repro.core.configurer import DirectCoolingConfigurer, TKSTranslatingConfigurer
from repro.core.coolair import CoolAir
from repro.core.versions import (
    ALL_VERSIONS,
    all_def,
    all_nd,
    energy_def,
    energy_version,
    temperature_version,
    var_high_recirc,
    var_low_recirc,
    variation_version,
)
from repro.errors import ConfigError
from repro.sim.engine import make_smoothsim
from repro.weather.locations import NEWARK


class TestTable1:
    """Each version's knobs must match Table 1 exactly."""

    def test_temperature_version(self):
        config = temperature_version()
        assert config.band_mode is BandMode.MAX_ONLY
        assert config.max_temp_setpoint_c == 29.0
        assert config.use_energy_term
        assert config.placement is PlacementStrategy.LOW_RECIRCULATION_FIRST
        assert config.temporal is TemporalPolicy.NONE

    def test_variation_version(self):
        config = variation_version()
        assert config.band_mode is BandMode.ADAPTIVE
        assert not config.use_energy_term
        assert config.placement is PlacementStrategy.HIGH_RECIRCULATION_FIRST
        assert config.temporal is TemporalPolicy.NONE

    def test_energy_version(self):
        config = energy_version()
        assert config.band_mode is BandMode.MAX_ONLY
        assert config.max_temp_setpoint_c == 30.0
        assert config.use_energy_term
        assert config.placement is PlacementStrategy.LOW_RECIRCULATION_FIRST

    def test_all_nd(self):
        config = all_nd()
        assert config.band_mode is BandMode.ADAPTIVE
        assert config.use_energy_term
        assert config.placement is PlacementStrategy.HIGH_RECIRCULATION_FIRST
        assert config.temporal is TemporalPolicy.NONE

    def test_all_def(self):
        config = all_def()
        assert config.temporal is TemporalPolicy.BAND_AWARE
        assert config.placement is PlacementStrategy.LOW_RECIRCULATION_FIRST

    def test_ablation_systems(self):
        low = var_low_recirc()
        high = var_high_recirc()
        assert low.band_mode is BandMode.FIXED
        assert (low.fixed_band_low_c, low.fixed_band_high_c) == (25.0, 30.0)
        assert not low.use_weather_forecast
        assert low.placement is PlacementStrategy.LOW_RECIRCULATION_FIRST
        assert high.placement is PlacementStrategy.HIGH_RECIRCULATION_FIRST

    def test_energy_def(self):
        config = energy_def()
        assert config.temporal is TemporalPolicy.COLDEST_HOURS
        assert config.use_energy_term

    def test_registry_complete(self):
        assert set(ALL_VERSIONS) == {
            "Temperature", "Variation", "Energy", "All-ND", "All-DEF",
            "Var-Low-Recirc", "Var-High-Recirc", "Energy-DEF",
        }
        for name, factory in ALL_VERSIONS.items():
            assert factory().name == name


class TestDirectConfigurer:
    def test_applies_command(self):
        units = AbruptCoolingUnits()
        configurer = DirectCoolingConfigurer(units)
        configurer.apply(CoolingCommand.free_cooling(0.5))
        assert units.mode is CoolingMode.FREE_COOLING


class TestTKSTranslatingConfigurer:
    def test_band_installs_setpoint(self):
        tks = TKSController()
        configurer = TKSTranslatingConfigurer(tks, AbruptCoolingUnits())
        configurer.install_band(TemperatureBand(24.0, 29.0))
        assert tks.config.setpoint_c == 29.0
        assert tks.config.band_c == 5.0

    def test_force_closed(self):
        tks = TKSController()
        units = AbruptCoolingUnits()
        configurer = TKSTranslatingConfigurer(tks, units)
        produced = configurer.force_command(
            CoolingCommand.closed(), control_temp_c=22.0, outside_temp_c=15.0
        )
        assert produced.mode is CoolingMode.CLOSED
        assert units.mode is CoolingMode.CLOSED

    def test_force_free_cooling(self):
        tks = TKSController()
        units = AbruptCoolingUnits()
        configurer = TKSTranslatingConfigurer(tks, units)
        produced = configurer.force_command(
            CoolingCommand.free_cooling(0.5), control_temp_c=26.0, outside_temp_c=15.0
        )
        assert produced.mode is CoolingMode.FREE_COOLING

    def test_force_ac(self):
        tks = TKSController()
        units = AbruptCoolingUnits()
        configurer = TKSTranslatingConfigurer(tks, units)
        produced = configurer.force_command(
            CoolingCommand.ac(1.0), control_temp_c=31.0, outside_temp_c=33.0
        )
        assert produced.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN)


class TestCoolAirManager:
    def test_start_day_selects_band(self, cooling_model):
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        band = coolair.start_day(182)
        assert band.high_c <= 30.0
        assert band.width_c == 5.0

    def test_decide_before_start_day_raises(self, cooling_model):
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        with pytest.raises(ConfigError):
            coolair.decide_cooling(None)

    def test_plan_compute_returns_active_pods(self, cooling_model):
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        active_ids, active_pods = coolair.plan_compute(16)
        assert len(active_ids) == 16
        # Pod 3 fills first (high-recirculation placement) but pod 0 also
        # shows up: it hosts the always-active Covering Subset.
        assert active_pods == [0, 3]

    def test_sensor_pod_mismatch_rejected(self, cooling_model):
        from repro.datacenter.layout import parasol_layout

        setup = make_smoothsim(NEWARK)
        layout2 = parasol_layout(num_servers=64, num_pods=2,
                                 recirculation=(0.1, 0.3))
        with pytest.raises(ConfigError):
            CoolAir(all_nd(), cooling_model, layout2, setup.forecast)

    def test_no_forecast_variant_uses_fixed_band(self, cooling_model):
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            var_high_recirc(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        band = coolair.start_day(182)
        assert (band.low_c, band.high_c) == (25.0, 30.0)
