"""End-to-end campaign service checks with real simulations.

The service must be a transparent front-end to the same computation the
one-shot CLI runs: a service-run campaign returns bit-identical results,
concurrent identical submissions share cells (one simulation per
distinct cache key), and cancelling one tenant never cancels a cell
another tenant is waiting on.  Clients here talk over the real socket
protocol — there is no in-process shortcut.
"""

import dataclasses
import multiprocessing

import pytest

from repro.analysis import experiments
from repro.errors import ReproError
from repro.service import CampaignService, CampaignSpec, ThreadedService
from repro.service.client import ServiceClient
from repro.service.spec import CellSpec

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="workers must inherit the monkeypatched cache directory",
)

# Two sampled days per year keeps each cell ~0.5 s.
FAST_STRIDE = 183

MATRIX_SPEC = CampaignSpec(
    kind="matrix", systems=("baseline",), sample_every_days=FAST_STRIDE
)


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(experiments, "_memory_cache", {})
    return monkeypatch


def start_service(tmp_path, **service_kwargs):
    service = CampaignService(workers=2, **service_kwargs)
    threaded = ThreadedService(service)
    address = threaded.start(socket_path=str(tmp_path / "service.sock"))
    return service, threaded, address


@fork_only
def test_service_result_matches_direct_run(fresh_caches, tmp_path):
    # Expected values first, under their own cache, so the comparison
    # cannot be satisfied by the service reading the direct run's cache.
    expected = experiments.five_location_matrix(
        systems=("baseline",), sample_every_days=FAST_STRIDE, workers=2
    )
    fresh_caches.setattr(experiments, "CACHE_DIR", tmp_path / "cache2")
    fresh_caches.setattr(experiments, "_memory_cache", {})

    service, threaded, address = start_service(tmp_path)
    try:
        with ServiceClient(socket_path=address) as client:
            reply = client.submit(MATRIX_SPEC, stream=True)
            events = list(client.events())
            result = client.result(reply["job_id"])
            status = client.status(reply["job_id"])
    finally:
        threaded.stop()

    assert events[-1]["event"] == "done" and events[-1]["failed"] == 0
    assert len([e for e in events if e.get("event") == "cell"]) == 5
    by_location = {cell["location"]: cell for cell in result["cells"]}
    for name, year in expected["baseline"].items():
        got = experiments._result_from_json(by_location[name]["result"])
        assert dataclasses.asdict(got) == dataclasses.asdict(year)
    # Nothing was pre-cached, nothing deduped: five real executions.
    assert status["service"]["cells_executed"] == 5
    assert status["service"]["cells_cached"] == 0
    assert status["job"]["state"] == "completed"


@fork_only
def test_concurrent_identical_submissions_share_cells(fresh_caches, tmp_path):
    service, threaded, address = start_service(tmp_path)
    try:
        with ServiceClient(socket_path=address) as client:
            first = client.submit(MATRIX_SPEC)["job_id"]
            second = client.submit(MATRIX_SPEC)["job_id"]
            job1 = client.wait_for_job(first, poll_s=0.1, timeout_s=120)
            job2 = client.wait_for_job(second, poll_s=0.1, timeout_s=120)
            snapshot = client.list_jobs()["service"]
    finally:
        threaded.stop()

    assert job1["state"] == job2["state"] == "completed"
    assert job1["done"] == job2["done"] == 5
    # One simulation per distinct cache key, no matter how many tenants:
    # the second job's cells all rode along (in-flight dedupe) or were
    # served from the cache the first job had just filled.
    assert snapshot["cells_executed"] == 5
    assert job2["deduped"] + job2["cached"] == 5


@fork_only
def test_cancel_does_not_kill_shared_cells(fresh_caches, tmp_path):
    # max_inflight=1 serializes cells, so the second tenant's shared
    # cell (Singapore, last in matrix order) is still pending at cancel.
    service, threaded, address = start_service(tmp_path, max_inflight=1)
    singapore_only = CampaignSpec(
        kind="cells",
        cells=(
            CellSpec(
                system="baseline",
                location="Singapore",
                sample_every_days=FAST_STRIDE,
            ),
        ),
    )
    try:
        with ServiceClient(socket_path=address) as client:
            big = client.submit(MATRIX_SPEC)["job_id"]
            small = client.submit(singapore_only)["job_id"]
            cancel_reply = client.cancel(big)
            survivor = client.wait_for_job(small, poll_s=0.1, timeout_s=120)
            cancelled = client.status(big)["job"]
            result = client.result(small)
    finally:
        threaded.stop()

    assert cancel_reply["cancelled"] is True
    assert cancelled["state"] == "cancelled"
    assert survivor["state"] == "completed"
    assert survivor["done"] == 1 and survivor["failed"] == 0
    assert result["cells"][0]["result"] is not None


@fork_only
def test_tcp_endpoint_and_admission_control(fresh_caches, tmp_path, monkeypatch):
    service = CampaignService(workers=2, max_jobs=1)
    threaded = ThreadedService(service)
    address = threaded.start(host="127.0.0.1", port=0)
    host, port = address.split(":")
    # Clients resolve TCP endpoints from the env, like any deployment.
    monkeypatch.setenv("REPRO_SERVICE_HOST", host)
    monkeypatch.setenv("REPRO_SERVICE_PORT", port)
    spec = CampaignSpec(
        kind="cells",
        cells=(
            CellSpec(
                system="baseline",
                location="Newark",
                sample_every_days=FAST_STRIDE,
            ),
        ),
    )
    try:
        with ServiceClient() as client:
            assert client.ping() is True
            job_id = client.submit(spec)["job_id"]
            with pytest.raises(ReproError, match="capacity"):
                client.submit(spec)
            job = client.wait_for_job(job_id, poll_s=0.1, timeout_s=120)
            # The finished job frees its admission slot; the rerun is
            # served straight from the cache it just filled.
            rerun = client.submit(spec)["job_id"]
            rerun_job = client.wait_for_job(rerun, poll_s=0.1, timeout_s=120)
    finally:
        threaded.stop()

    assert job["state"] == "completed"
    assert rerun_job["state"] == "completed" and rerun_job["cached"] == 1
