"""Streaming world-sweep equivalence (the campaign data plane).

The streaming path folds each completed cell into compact columnar
summaries instead of holding every :class:`YearResult` in the parent.
Its output must be *identical* — same locations, same order, bit-equal
floats — to the in-memory path, with real simulations on both sides.
The accumulator's pairing rules (drop a climate missing either result,
grid order, error on empty) are pinned with fakes.
"""

import dataclasses

import pytest

from repro.analysis import experiments
from repro.analysis.runner import YearTask
from repro.analysis.worldmap import StreamingWorldAccumulator
from repro.errors import SimulationError
from repro.sim.yearsim import YearResult
from repro.weather.locations import world_grid

# One sampled day per year keeps each of the 8 cells fast.
FAST_STRIDE = 365


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(experiments, "_memory_cache", {})
    return monkeypatch


def test_streaming_sweep_identical_to_in_memory(fresh_caches):
    streamed = experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
        stream=True,
    )
    fresh_caches.setattr(experiments, "_memory_cache", {})
    fresh_caches.setattr(
        experiments, "CACHE_DIR", experiments.CACHE_DIR.parent / "cache2"
    )
    in_memory = experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
        stream=False,
    )
    # Frozen dataclasses: == is field-wise over every location, in order.
    assert streamed == in_memory
    assert streamed.comparisons[0].name == in_memory.comparisons[0].name
    assert streamed.headline() == in_memory.headline()


def fake_result(system, climate_name, range_c, pue_overhead):
    return YearResult(
        label=system,
        climate_name=climate_name,
        sampled_days=[0],
        daily_worst_range_c=[range_c],
        daily_outside_range_c=[range_c + 4.0],
        daily_avg_violation_c=[0.0],
        daily_max_rate_c_per_hour=[2.0],
        cooling_kwh=pue_overhead * 500.0,
        it_kwh=500.0,
    )


class TestAccumulatorRules:
    def _tasks_and_climates(self):
        climates = world_grid(2)
        tasks = []
        for climate in climates:
            for system in ("baseline", "All-ND"):
                tasks.append(YearTask(system, climate))
        return climates, tasks

    def test_matches_summarize_world_pairing(self):
        climates, tasks = self._tasks_and_climates()
        accumulator = StreamingWorldAccumulator(climates, "All-ND")
        results = []
        for task in tasks:
            name = task.system
            results.append(
                fake_result(
                    name,
                    task.climate.name,
                    12.0 if name == "baseline" else 7.0,
                    0.10 if name == "baseline" else 0.08,
                )
            )
        # Feed out of order: completion order must not matter.
        for index in (3, 0, 2, 1):
            accumulator.consume(index, tasks[index], results[index])
        summary = accumulator.summary()
        pairs = [(results[0], results[1]), (results[2], results[3])]
        coordinates = [(c.latitude, c.longitude) for c in climates]
        from repro.analysis.worldmap import summarize_world

        assert summary == summarize_world(pairs, coordinates)
        assert [c.name for c in summary.comparisons] == [
            c.name for c in climates
        ]

    def test_incomplete_climate_dropped(self):
        climates, tasks = self._tasks_and_climates()
        accumulator = StreamingWorldAccumulator(climates, "All-ND")
        # First climate gets both results; second only its baseline
        # (e.g. its All-ND cell failed and stayed None).
        accumulator.consume(
            0, tasks[0], fake_result("baseline", climates[0].name, 12.0, 0.1)
        )
        accumulator.consume(
            1, tasks[1], fake_result("All-ND", climates[0].name, 7.0, 0.08)
        )
        accumulator.consume(
            2, tasks[2], fake_result("baseline", climates[1].name, 11.0, 0.1)
        )
        accumulator.consume(3, tasks[3], None)
        summary = accumulator.summary()
        assert [c.name for c in summary.comparisons] == [climates[0].name]

    def test_empty_summary_raises(self):
        climates, tasks = self._tasks_and_climates()
        accumulator = StreamingWorldAccumulator(climates, "All-ND")
        with pytest.raises(SimulationError, match="no locations"):
            accumulator.summary()

    def test_metrics_bit_exact_through_columns(self):
        climates, tasks = self._tasks_and_climates()
        accumulator = StreamingWorldAccumulator(climates, "All-ND")
        baseline = fake_result("baseline", climates[0].name, 12.34567, 0.1)
        coolair = fake_result("All-ND", climates[0].name, 7.65432, 0.08)
        accumulator.consume(0, tasks[0], baseline)
        accumulator.consume(1, tasks[1], coolair)
        (comparison,) = accumulator.summary().comparisons
        assert comparison.baseline_max_range_c == baseline.max_range_c
        assert comparison.coolair_max_range_c == coolair.max_range_c
        assert comparison.baseline_pue == baseline.pue
        assert comparison.coolair_pue == coolair.pue
