"""End-to-end runs of the alternative cooling plants.

The acceptance gates for the multi-backend plant layer: every backend
runs a cached year through the same entry points the CLI uses, the
``parasol`` default stays bit-identical to a plant-unaware call, and a
small world sweep demonstrates the energy-vs-water tradeoff between the
chiller (power-hungry, dry) and the cooling tower (frugal, thirsty).
"""

import dataclasses
import multiprocessing

import pytest

from repro.analysis import experiments
from repro.weather.locations import NEWARK

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="workers must inherit the monkeypatched cache directory",
)

# One sampled day per year: each cell is a single simulated day.
FAST_STRIDE = 365


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(experiments, "_memory_cache", {})
    return monkeypatch


@pytest.mark.parametrize("plant", ["chiller", "cooling_tower", "hybrid"])
def test_backend_runs_a_cached_year(fresh_caches, plant):
    result = experiments.year_result(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant=plant
    )
    assert result.pue > 1.0
    assert result.it_kwh > 0.0
    assert result.water_l >= 0.0
    # The run landed on disk under a plant-tagged key...
    key = experiments.cache_key(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant=plant
    )
    assert f"-p{plant}-" in key
    assert experiments.cache_path(key).exists()
    # ...and a second call is a cache hit, not a re-simulation.
    again = experiments.year_result(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant=plant
    )
    assert again is result


def test_parasol_default_is_bit_identical(fresh_caches, tmp_path):
    explicit = experiments.year_result(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant="parasol"
    )
    fresh_caches.setattr(experiments, "CACHE_DIR", tmp_path / "cache2")
    fresh_caches.setattr(experiments, "_memory_cache", {})
    implicit = experiments.year_result(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE
    )
    assert dataclasses.asdict(explicit) == dataclasses.asdict(implicit)
    assert explicit.water_l == 0.0


def test_tower_draws_water_chiller_draws_power(fresh_caches, tmp_path):
    """The per-site version of the world tradeoff, on one Newark year."""
    chiller = experiments.year_result(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant="chiller"
    )
    tower = experiments.year_result(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant="cooling_tower"
    )
    assert chiller.water_l == 0.0
    assert tower.water_l > 0.0
    assert tower.wue > 0.0
    assert chiller.cooling_kwh > tower.cooling_kwh
    assert chiller.pue > tower.pue


def test_cli_year_reports_wue_for_wet_plants(fresh_caches, capsys):
    from repro.cli import main

    assert main([
        "year", "--location", "Newark", "--system", "baseline",
        "--sample-days", str(FAST_STRIDE), "--plant", "cooling_tower",
    ]) == 0
    out = capsys.readouterr().out
    assert "WUE" in out

    assert main([
        "year", "--location", "Newark", "--system", "baseline",
        "--sample-days", str(FAST_STRIDE),
    ]) == 0
    out = capsys.readouterr().out
    assert "WUE" not in out  # the default plant's output is unchanged


@fork_only
def test_world_sweep_shows_energy_water_tradeoff(fresh_caches, tmp_path):
    chiller = experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
        plant="chiller",
    )
    tower = experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
        plant="cooling_tower",
    )
    # The tower sweats; the chiller stays dry but pays in PUE.
    assert chiller.avg_baseline_wue == 0.0
    assert tower.avg_baseline_wue > 0.0
    assert chiller.avg_baseline_pue > tower.avg_baseline_pue
    assert "WUE" in tower.headline()
    assert "WUE" not in chiller.headline()


@fork_only
def test_service_runs_plant_campaigns(fresh_caches, tmp_path):
    from repro.service import CampaignService, ThreadedService
    from repro.service.client import ServiceClient
    from repro.service.spec import CampaignSpec, CellSpec

    spec = CampaignSpec(
        kind="cells",
        cells=(
            CellSpec(
                system="baseline",
                location="Newark",
                sample_every_days=FAST_STRIDE,
            ),
        ),
        plant="cooling_tower",
    )
    service = CampaignService(workers=1)
    threaded = ThreadedService(service)
    address = threaded.start(socket_path=str(tmp_path / "service.sock"))
    try:
        with ServiceClient(socket_path=address) as client:
            reply = client.submit(spec, stream=True)
            events = list(client.events())
            result = client.result(reply["job_id"])
    finally:
        threaded.stop()
    assert events[-1]["event"] == "done" and events[-1]["failed"] == 0
    (cell,) = result["cells"]
    assert cell["plant"] == "cooling_tower"
    year = experiments._result_from_json(cell["result"])
    assert year.water_l > 0.0
    # The service wrote the same plant-tagged cache entry the CLI reads.
    key = experiments.cache_key(
        "baseline", NEWARK, sample_every_days=FAST_STRIDE, plant="cooling_tower"
    )
    assert experiments.cache_path(key).exists()
