"""Day-unfolded lane scheduling vs the scalar reference (repro.sim.lanes).

``run_year_unfolded`` steps one scenario's sampled year-days side by side
as lockstep lanes.  That is only valid because day boundaries reset all
carried state (actuator speeds, controller latches, disk temperatures),
making sampled days independent — and the contract, like the lane
engine's, is *bit identity* with the scalar :func:`run_year`: the fold
back into a :class:`YearResult` visits the days in sampled order, so
every float (including the energy accumulation order) matches.

The fast tests run in the default (non-slow) selection; the mixed-cells
test widens the check to full element-wise traces and runs under
``--slow``.  The gate tests pin which configurations are allowed to
unfold at all.
"""

import dataclasses

import pytest

from repro.analysis import experiments
from repro.analysis.runner import YearTask, run_year_tasks
from repro.core.config import TemporalPolicy
from repro.core.versions import ALL_VERSIONS
from repro.errors import ConfigError
from repro.faults import builtin_scenario
from repro.sim.lanes import LaneScenario, run_year_unfolded
from repro.sim.yearsim import run_year
from repro.weather.locations import CHAD, NEWARK

from tests.integration.test_lane_equivalence import assert_results_identical

# Three sampled days (0, 122, 244): one full 2-lane batch plus a
# remainder batch, so both runner shapes are covered.
FAST_STRIDE = 122


def test_unfolded_year_matches_scalar(cooling_model, facebook_trace):
    """Baseline and All-ND unfolded years == their scalar runs, bit for bit."""
    for system in ("baseline", ALL_VERSIONS["All-ND"]()):
        scenario = LaneScenario(
            system=system, climate=NEWARK, trace=facebook_trace
        )
        unfolded = run_year_unfolded(
            scenario, 2, model=cooling_model, sample_every_days=FAST_STRIDE
        )
        scalar = run_year(
            system,
            NEWARK,
            facebook_trace,
            model=cooling_model,
            sample_every_days=FAST_STRIDE,
        )
        assert_results_identical(unfolded, scalar)
        assert unfolded.daily_degraded_fraction == (
            scalar.daily_degraded_fraction
        )


def test_fold_independent_of_unfold_width(cooling_model, facebook_trace):
    """Any day_lanes width folds to the identical result.

    This is what lets the campaign runner slice (cell, day) items into
    arbitrary chunks — including chunks straddling cells — without
    changing any bit of any cell's result.
    """
    scenario = LaneScenario(
        system="baseline", climate=CHAD, trace=facebook_trace
    )
    reference = None
    for width in (1, 2, 3, 8):
        result = run_year_unfolded(
            scenario, width, model=cooling_model, sample_every_days=FAST_STRIDE
        )
        if reference is None:
            reference = result
        else:
            assert dataclasses.asdict(result) == dataclasses.asdict(reference)


def test_unfolded_rejects_non_positive_width(facebook_trace):
    scenario = LaneScenario(
        system="baseline", climate=NEWARK, trace=facebook_trace
    )
    with pytest.raises(ConfigError):
        run_year_unfolded(scenario, 0)


@pytest.mark.slow
def test_mixed_cells_unfolded_matches_scalar_elementwise(
    cooling_model, facebook_trace
):
    """Unfolded traces == scalar traces, step record by step record.

    Newark and Chad run different bands, so the unfolded sibling days mix
    free-cooling, closed, and AC decisions across lanes on the same
    epochs — every inlet temperature, regime, fan speed, duty, energy,
    and humidity must still match the scalar day-sequential run exactly.
    """
    for system, climate in (
        (ALL_VERSIONS["All-ND"](), NEWARK),
        ("baseline", CHAD),
    ):
        scenario = LaneScenario(
            system=system, climate=climate, trace=facebook_trace
        )
        unfolded = run_year_unfolded(
            scenario,
            3,
            model=cooling_model,
            sample_every_days=FAST_STRIDE,
            keep_traces=True,
        )
        scalar = run_year(
            system,
            climate,
            facebook_trace,
            model=cooling_model,
            sample_every_days=FAST_STRIDE,
            keep_traces=True,
        )
        assert_results_identical(unfolded, scalar)
        assert len(unfolded.traces) == len(scalar.traces)
        for lane_day, scalar_day in zip(unfolded.traces, scalar.traces):
            assert lane_day.day_of_year == scalar_day.day_of_year
            assert len(lane_day.records) == len(scalar_day.records)
            for lane_rec, scalar_rec in zip(
                lane_day.records, scalar_day.records
            ):
                assert lane_rec == scalar_rec, (
                    f"step record diverged at t={scalar_rec.time_s} on day "
                    f"{scalar_day.day_of_year} for {scalar.label} @ "
                    f"{scalar.climate_name}"
                )


class TestEligibilityGate:
    """Which cells may unfold; everything else stays day-sequential."""

    def test_plain_cells_are_eligible(self):
        assert experiments.day_unfold_eligible("baseline")
        assert experiments.day_unfold_eligible("All-ND")
        assert experiments.day_unfold_eligible(ALL_VERSIONS["Energy"]())

    def test_temporal_scheduling_is_not(self):
        config = ALL_VERSIONS["All-DEF"]()
        assert config.temporal is not TemporalPolicy.NONE
        assert not experiments.day_unfold_eligible(config)

    def test_deferrable_workloads_are_not(self):
        assert not experiments.day_unfold_eligible(
            "baseline", deferrable=True
        )

    def test_faulted_cells_are_not(self):
        config = dataclasses.replace(
            ALL_VERSIONS["All-ND"](),
            faults=builtin_scenario("fan-stuck"),
        )
        assert experiments.effective_engine(config) == "scalar"
        assert not experiments.day_unfold_eligible(config)

    def test_scalar_engine_is_not(self):
        assert not experiments.day_unfold_eligible(
            "baseline", engine="scalar"
        )

    def test_ineligible_cell_falls_back_in_year_result(
        self, tmp_path, monkeypatch
    ):
        """``day_lanes`` on an ineligible cell routes day-sequentially."""
        monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
        monkeypatch.setattr(experiments, "_memory_cache", {})
        unfolded = experiments.year_result(
            "All-DEF",
            NEWARK,
            deferrable=True,
            sample_every_days=366,
            use_disk_cache=False,
            day_lanes=8,
        )
        monkeypatch.setattr(experiments, "_memory_cache", {})
        sequential = experiments.year_result(
            "All-DEF",
            NEWARK,
            deferrable=True,
            sample_every_days=366,
            use_disk_cache=False,
        )
        assert dataclasses.asdict(unfolded) == dataclasses.asdict(sequential)


class TestRunnerDayChunking:
    """The campaign runner's parent-side (cell, day) fan-out."""

    @pytest.fixture()
    def fresh_caches(self, tmp_path, monkeypatch):
        monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
        monkeypatch.setattr(experiments, "_memory_cache", {})
        return monkeypatch

    def _tasks(self):
        return [
            YearTask("baseline", NEWARK, sample_every_days=FAST_STRIDE),
            YearTask("baseline", CHAD, sample_every_days=FAST_STRIDE),
        ]

    def test_serial_day_unfold_equals_sequential(self, fresh_caches):
        sequential = run_year_tasks(
            self._tasks(), workers=1, day_lanes=1, use_disk_cache=False
        )
        fresh_caches.setattr(experiments, "_memory_cache", {})
        unfolded = run_year_tasks(
            self._tasks(), workers=1, day_lanes=3, use_disk_cache=False
        )
        for a, b in zip(sequential, unfolded):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="workers must inherit the monkeypatched cache directory",
    )
    def test_pooled_day_chunks_equal_sequential(self, fresh_caches):
        """2 workers x 3-day chunks straddling cells == the serial run."""
        sequential = run_year_tasks(
            self._tasks(), workers=1, day_lanes=1, use_disk_cache=False
        )
        fresh_caches.setattr(experiments, "_memory_cache", {})
        chunked = run_year_tasks(
            self._tasks(), workers=2, day_lanes=3, use_disk_cache=False
        )
        for a, b in zip(sequential, chunked):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
