"""Pin one full baseline-controller day to its pre-refactor trace.

``tests/data/engine_golden_day.json`` records the exact Real-Sim day-182
trajectory (Newark, Facebook-style profile workload, baseline controller)
produced before the PR-2 fast-path refactor.  The baseline controller takes
no optimizer decisions, so this isolates the engine + weather + plant
layers from the (intentionally changed) candidate list.  JSON floats
round-trip losslessly, so ``==`` compares the last ulp.
"""

from __future__ import annotations

import json

from tests.unit.test_plant_golden import DATA_DIR, load_generator

FIELDS = (
    "time_s",
    "outside_temp_c",
    "sensor_temps_c",
    "mode",
    "fc_fan_speed",
    "cooling_power_w",
    "it_power_w",
    "inside_rh_pct",
    "outside_rh_pct",
    "disk_temps_c",
)


class TestEngineGolden:
    def test_baseline_day_is_bit_identical(self):
        golden = json.loads((DATA_DIR / "engine_golden_day.json").read_text())
        generator = load_generator("make_engine_golden")
        replay = generator.generate()

        assert replay["day"] == golden["day"]
        assert len(replay["trace"]) == len(golden["trace"])
        for i, (got, want) in enumerate(zip(replay["trace"], golden["trace"])):
            for field in FIELDS:
                assert got[field] == want[field], (i, field)
