"""Screened world sweeps against the exhaustive path (real simulations).

The two load-bearing guarantees of the screening pipeline:

* ``screen="off"`` is the exhaustive path — same comparisons, bit-equal
  floats, no screening state anywhere in the output;
* with screening on, the representative cells that *are* simulated use
  the same cache keys as the exhaustive sweep (one shared cache
  namespace), far fewer cells run than the grid holds, and the
  provenance counters account for every grid point.
"""

import dataclasses

import pytest

from repro.analysis import experiments
from repro.analysis.screening import ScreeningPolicy
from repro.weather.locations import world_grid

FAST_STRIDE = 365


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(experiments, "_memory_cache", {})
    return monkeypatch


def test_screen_off_is_bit_identical_to_default(fresh_caches):
    baseline = experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
    )
    fresh_caches.setattr(experiments, "_memory_cache", {})
    explicit_off = experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
        screen="off",
    )
    assert explicit_off == baseline
    for a, b in zip(explicit_off.comparisons, baseline.comparisons):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert a.provenance == "simulated"


def test_screen_off_ignores_screen_stats(fresh_caches):
    stats = {}
    experiments.world_sweep(
        num_locations=2,
        sample_every_days=FAST_STRIDE,
        workers=1,
        screen="off",
        screen_stats=stats,
    )
    assert stats == {}


def test_screened_sweep_counters_and_cell_savings(fresh_caches):
    grid_points = 60
    policy = ScreeningPolicy(
        max_simulated_fraction=0.05, min_simulated_locations=2
    )
    stats = {}
    summary = experiments.world_sweep(
        num_locations=grid_points,
        sample_every_days=FAST_STRIDE,
        workers=1,
        screen="on",
        screen_policy=policy,
        screen_stats=stats,
    )
    counters = stats["counters"]
    # Every grid point is accounted for by exactly one provenance.
    assert sum(counters.values()) == grid_points
    assert stats["grid_points"] == grid_points
    assert len(summary.comparisons) == grid_points
    # The acceptance bar: at least 5x fewer fully simulated cells than
    # the exhaustive sweep's 2 * grid_points.
    assert stats["cells_simulated"] * 5 <= 2 * grid_points
    assert counters["simulated"] == stats["simulated_locations"]
    assert stats["cost_model"]["observed_cells"] > 0


def test_screened_representatives_match_exhaustive_cells(fresh_caches):
    # Screened first (cold cache), exhaustive second: the representative
    # cells' cache keys must be the exhaustive sweep's keys, so the
    # second sweep reuses them and the simulated metrics agree bit for
    # bit.
    grid_points = 6
    policy = ScreeningPolicy(
        max_simulated_fraction=0.5, min_simulated_locations=2
    )
    stats = {}
    screened = experiments.world_sweep(
        num_locations=grid_points,
        sample_every_days=FAST_STRIDE,
        workers=1,
        screen="on",
        screen_policy=policy,
        screen_stats=stats,
    )
    fresh_caches.setattr(experiments, "_memory_cache", {})
    exhaustive = experiments.world_sweep(
        num_locations=grid_points,
        sample_every_days=FAST_STRIDE,
        workers=1,
    )
    assert len(exhaustive.comparisons) == grid_points
    by_name = {c.name: c for c in exhaustive.comparisons}
    simulated = [
        c for c in screened.comparisons if c.provenance == "simulated"
    ]
    assert simulated
    for comparison in simulated:
        truth = by_name[comparison.name]
        assert comparison.baseline_max_range_c == truth.baseline_max_range_c
        assert comparison.coolair_max_range_c == truth.coolair_max_range_c
        assert comparison.baseline_pue == truth.baseline_pue
        assert comparison.coolair_pue == truth.coolair_pue


def test_grid_points_parameter_scales_the_grid(fresh_caches):
    assert len(world_grid(120)) == 120
    assert len(world_grid(24)) == 24
    # Dense grids stay dense: the generator must not silently cap.
    assert len(world_grid(5000)) == 5000
