"""Learning-campaign integration tests (Section 4.2 pipeline)."""

import collections

import numpy as np
import pytest

from repro.cooling.regimes import CoolingMode
from repro.core.modeler import CoolingLearner, rank_pods_by_recirculation
from repro.sim.campaign import (
    probe_recirculation,
    run_learning_campaign,
    trained_cooling_model,
)
from repro.sim.validation import fraction_within, prediction_errors
from repro.weather.locations import NEWARK


@pytest.fixture(scope="module")
def campaign_log():
    return run_learning_campaign(days=(40, 200))


class TestCampaignCoverage:
    def test_visits_all_major_regimes(self, campaign_log):
        modes = collections.Counter(s.mode for s in campaign_log)
        assert modes[CoolingMode.CLOSED] > 50
        assert modes[CoolingMode.FREE_COOLING] > 50
        assert modes[CoolingMode.AC_ON] > 10
        assert modes[CoolingMode.AC_FAN] > 10

    def test_fan_speed_diversity(self, campaign_log):
        speeds = {
            round(s.fan_speed, 1)
            for s in campaign_log
            if s.mode is CoolingMode.FREE_COOLING
        }
        assert len(speeds) >= 3

    def test_utilization_diversity(self, campaign_log):
        utils = {round(s.utilization, 1) for s in campaign_log}
        assert len(utils) >= 3

    def test_sample_cadence_is_model_step(self, campaign_log):
        gaps = np.diff([s.time_s for s in campaign_log[:100]])
        assert np.all(gaps == 120.0)


class TestLearnedModelQuality:
    """The Figure 5 headline numbers: most predictions within 1C."""

    def test_two_minute_accuracy(self, cooling_model):
        held_out = run_learning_campaign(days=(100,))
        errors = prediction_errors(cooling_model, held_out, horizon_steps=1)
        assert fraction_within(errors, 1.0) > 0.90

    def test_ten_minute_accuracy_no_transitions(self, cooling_model):
        held_out = run_learning_campaign(days=(100,))
        errors = prediction_errors(
            cooling_model, held_out, horizon_steps=5, exclude_transitions=True
        )
        assert fraction_within(errors, 1.0) > 0.85

    def test_transitions_hurt_accuracy(self, cooling_model):
        held_out = run_learning_campaign(days=(100, 270))
        with_t = prediction_errors(cooling_model, held_out, 5, False)
        without_t = prediction_errors(cooling_model, held_out, 5, True)
        assert float(np.mean(without_t)) <= float(np.mean(with_t)) + 1e-9


class TestModelCache:
    def test_cache_returns_same_object(self):
        a = trained_cooling_model()
        b = trained_cooling_model()
        assert a is b

    def test_uncached_returns_fresh(self):
        a = trained_cooling_model(days=(40, 200), use_cache=False)
        b = trained_cooling_model(days=(40, 200), use_cache=False)
        assert a is not b


class TestRecirculationProbe:
    def test_probe_orders_pods_by_recirculation(self):
        rises = probe_recirculation()
        # The plant's pods have increasing recirculation fractions; the
        # probe must observe increasing inlet response.
        ranking = rank_pods_by_recirculation(rises)
        assert ranking == [3, 2, 1, 0]

    def test_probe_rises_are_positive(self):
        rises = probe_recirculation()
        assert all(r > 0 for r in rises)
