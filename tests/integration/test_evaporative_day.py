"""End-to-end adiabatic cooling on a hot, dry day (Section 2 extension).

Runs the plant through a Chad day under plain free cooling versus free
cooling with an evaporative stage (policy-gated on the humidity
constraint), verifying the extension's value where it should exist and
its restraint where it should not (humid Singapore).
"""

import numpy as np
import pytest

from repro.cooling.extensions import (
    EvaporativeCoolingUnits,
    evaporation_worthwhile,
)
from repro.cooling.regimes import CoolingCommand
from repro.physics.psychrometrics import absolute_to_relative_humidity
from repro.physics.thermal import ThermalPlant
from repro.weather.locations import CHAD, SINGAPORE
from repro.weather.tmy import generate_tmy


def run_day(climate, day, evaporative, target_c=30.0):
    tmy = generate_tmy(climate)
    plant = ThermalPlant()
    units = EvaporativeCoolingUnits(ramp_per_step=1.0)
    start = day * 86_400
    plant.reset(tmy.temperature_c(start) + 4.0, tmy.mixing_ratio(start))

    temps, energy_j, evap_steps = [], 0.0, 0
    for step in range(720):
        t = start + step * 120.0
        outside_c = tmy.temperature_c(t)
        outside_rh = tmy.relative_humidity_pct(t)
        inside_rh = absolute_to_relative_humidity(
            plant.state.cold_aisle_mixing_ratio,
            float(np.mean(plant.state.pod_inlet_temp_c)),
        )
        units.apply(CoolingCommand.free_cooling(0.6))
        if evaporative:
            on = evaporation_worthwhile(
                outside_c, outside_rh, inside_rh, target_c
            )
            units.set_evaporative(on)
            evap_steps += int(on)
        inputs = units.plant_inputs()
        inputs.pod_it_power_w = [400.0] * 4
        inputs.outside_temp_c = outside_c
        inputs.outside_mixing_ratio = tmy.mixing_ratio(t)
        state = plant.step(inputs, 120.0)
        temps.append(float(state.pod_inlet_temp_c.max()))
        energy_j += units.power_w() * 120.0
    return np.array(temps), energy_j / 3.6e6, evap_steps


HOT_DAY = 120  # Chad pre-monsoon heat


class TestEvaporativeChad:
    @pytest.fixture(scope="class")
    def runs(self):
        plain_temps, plain_kwh, _ = run_day(CHAD, HOT_DAY, evaporative=False)
        evap_temps, evap_kwh, evap_steps = run_day(CHAD, HOT_DAY, evaporative=True)
        return plain_temps, evap_temps, plain_kwh, evap_kwh, evap_steps

    def test_evaporation_engages_in_dry_heat(self, runs):
        *_, evap_steps = runs
        assert evap_steps > 100  # a good chunk of the day

    def test_peak_inlets_lowered(self, runs):
        plain_temps, evap_temps, *_ = runs
        assert evap_temps.max() < plain_temps.max() - 2.0

    def test_mean_inlets_lowered(self, runs):
        plain_temps, evap_temps, *_ = runs
        assert evap_temps.mean() < plain_temps.mean()

    def test_pump_energy_is_modest(self, runs):
        _, _, plain_kwh, evap_kwh, _ = runs
        # The pump adds far less than the AC hours it displaces would cost.
        assert evap_kwh - plain_kwh < 1.5


class TestEvaporativeSingapore:
    def test_humidity_constraint_blocks_evaporation(self):
        """Singapore is hot but too humid: the §2 'within the humidity
        constraint' policy must keep the pads mostly off."""
        _, _, evap_steps = run_day(SINGAPORE, 182, evaporative=True)
        assert evap_steps < 120  # rarely engaged despite the heat
