"""Day-scale end-to-end runs: baseline and CoolAir on both hardware
generations, with both workload drivers."""

import collections

import numpy as np
import pytest

from repro.cooling.regimes import CoolingMode
from repro.core.coolair import CoolAir
from repro.core.versions import all_nd, variation_version
from repro.sim.engine import (
    BaselineAdapter,
    ClusterWorkload,
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
    make_realsim,
    make_smoothsim,
)
from repro.weather.locations import NEWARK, SINGAPORE


def run_coolair_day(setup, config, model, trace, day):
    coolair = CoolAir(
        config, model, setup.layout, setup.forecast,
        smooth_hardware=setup.smooth_hardware,
    )
    workload = ProfileWorkload(trace, setup.layout, 600.0)
    runner = DayRunner(setup, workload, CoolAirAdapter(coolair))
    return runner.run_day(day), coolair


class TestBaselineDay:
    @pytest.fixture(scope="class")
    def summer_day(self, facebook_trace):
        setup = make_realsim(NEWARK)
        runner = DayRunner(
            setup, ClusterWorkload(facebook_trace, setup.layout), BaselineAdapter()
        )
        return runner.run_day(182)

    def test_full_day_recorded(self, summer_day):
        assert len(summer_day) == 720

    def test_temperatures_bounded_by_setpoint_control(self, summer_day):
        # The extended baseline aims below 30C; allow controller slack.
        assert summer_day.max_sensor_temp_c() < 34.0

    def test_uses_free_cooling_on_a_mild_day(self, summer_day):
        assert summer_day.time_in_mode(CoolingMode.FREE_COOLING) > 0.3

    def test_pue_reasonable(self, summer_day):
        assert 1.08 <= summer_day.pue() < 1.6

    def test_all_servers_stay_active(self, summer_day):
        assert all(r.utilization == 1.0 for r in summer_day.records)


class TestCoolAirDay:
    def test_smooth_day_keeps_band(self, cooling_model, facebook_trace):
        setup = make_smoothsim(NEWARK)
        day, coolair = run_coolair_day(
            setup, all_nd(), cooling_model, facebook_trace, 182
        )
        band = coolair.band
        temps = day.sensor_temps()
        inside = np.mean((temps >= band.low_c - 0.5) & (temps <= band.high_c + 0.5))
        assert inside > 0.7

    def test_smooth_beats_abrupt_on_variation(self, cooling_model, facebook_trace):
        """The Figure 7(b)-vs-(d) result: fine-grained hardware controls
        variation; Parasol's abrupt units cannot.  The sharpest signature
        is the temperature-change *rate*: opening the abrupt unit at its
        15% minimum speed produces swings beyond the 20C/h ASHRAE limit
        that the smooth unit's 1% ramp avoids."""
        days = (70, 240, 330)
        smooth_range = abrupt_range = 0.0
        smooth_rate = abrupt_rate = 0.0
        for day in days:
            smooth_day, _ = run_coolair_day(
                make_smoothsim(NEWARK), all_nd(), cooling_model,
                facebook_trace, day,
            )
            abrupt_day, _ = run_coolair_day(
                make_realsim(NEWARK), all_nd(), cooling_model,
                facebook_trace, day,
            )
            smooth_range += smooth_day.worst_sensor_range_c()
            abrupt_range += abrupt_day.worst_sensor_range_c()
            smooth_rate = max(smooth_rate, smooth_day.max_rate_c_per_hour())
            abrupt_rate = max(abrupt_rate, abrupt_day.max_rate_c_per_hour())
        assert smooth_range <= abrupt_range
        assert smooth_rate < abrupt_rate
        assert smooth_rate <= 20.0 < abrupt_rate

    def test_energy_management_sleeps_servers(self, cooling_model, facebook_trace):
        setup = make_smoothsim(NEWARK)
        day, _ = run_coolair_day(
            setup, all_nd(), cooling_model, facebook_trace, 182
        )
        # At 27% average utilization CoolAir keeps only part of the fleet on.
        assert float(np.mean([r.utilization for r in day.records])) < 0.9

    def test_humid_location_respects_rh_limit_mostly(
        self, cooling_model, facebook_trace
    ):
        setup = make_smoothsim(SINGAPORE)
        day, _ = run_coolair_day(
            setup, all_nd(), cooling_model, facebook_trace, 182
        )
        assert day.rh_violation_fraction(80.0) < 0.4

    def test_cluster_workload_day(self, cooling_model, facebook_trace):
        """The task-level Hadoop driver must work under CoolAir control."""
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        workload = ClusterWorkload(facebook_trace, setup.layout)
        runner = DayRunner(setup, workload, CoolAirAdapter(coolair))
        day = runner.run_day(182)
        assert len(day) == 720
        assert workload.cluster.jobs_finished > 0.8 * len(facebook_trace)

    def test_disk_power_cycle_budget_respected(self, cooling_model, facebook_trace):
        """Section 4.2: no more than ~2.2 power cycles per hour on average."""
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        workload = ProfileWorkload(facebook_trace, setup.layout, 600.0)
        runner = DayRunner(setup, workload, CoolAirAdapter(coolair))
        runner.run_day(182)
        assert setup.layout.disks.power_cycles_per_hour() < 2.2


class TestWarmup:
    def test_warmup_removes_initialization_transient(
        self, cooling_model, facebook_trace
    ):
        with_warmup, _ = run_coolair_day(
            make_smoothsim(NEWARK), all_nd(), cooling_model, facebook_trace, 14
        )
        setup = make_smoothsim(NEWARK)
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, setup.forecast,
            smooth_hardware=True,
        )
        runner = DayRunner(
            setup, ProfileWorkload(facebook_trace, setup.layout, 600.0),
            CoolAirAdapter(coolair),
        )
        without_warmup = runner.run_day(14, warmup_hours=0.0)
        assert (
            with_warmup.worst_sensor_range_c()
            <= without_warmup.worst_sensor_range_c() + 0.5
        )

    def test_trace_always_starts_at_midnight(self, cooling_model, facebook_trace):
        day, _ = run_coolair_day(
            make_smoothsim(NEWARK), all_nd(), cooling_model, facebook_trace, 100
        )
        assert day.records[0].time_s == 0.0
