"""Lane-engine vs scalar-reference equivalence (repro.sim.lanes).

The scalar path (:func:`repro.sim.yearsim.run_year`) is the pinned
bit-identical reference for the lane-batched engine: every float a lane
produces — sensor temperatures, regimes, humidities, energies — must equal
the value an independent scalar run of that scenario produces, because the
optimizer's selection key ``(round(score, 6), energy, same_mode)`` makes
whole trajectories diverge on any least-significant-bit difference.

The fast test here runs in the default (non-slow) selection so every CI
run proves the equivalence on a small batch; the mixed-batch test widens
it to 2 climates x 2 systems over seasonally spread days and compares the
full step-by-step traces element-wise.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.versions import ALL_VERSIONS
from repro.sim.lanes import LaneScenario, run_year_lanes, run_year_unfolded
from repro.sim.yearsim import run_year
from repro.weather.locations import CHAD, NEWARK, SINGAPORE

RESULT_FIELDS = (
    "label",
    "climate_name",
    "sampled_days",
    "daily_worst_range_c",
    "daily_outside_range_c",
    "daily_avg_violation_c",
    "daily_max_rate_c_per_hour",
    "cooling_kwh",
    "it_kwh",
    "water_l",
    "tower_mech_hours",
    "chiller_mech_hours",
)


def assert_results_identical(lane_result, scalar_result):
    for field in RESULT_FIELDS:
        assert getattr(lane_result, field) == getattr(scalar_result, field), (
            f"{field} diverged for {scalar_result.label} @ "
            f"{scalar_result.climate_name}"
        )


def test_fast_two_lane_batch_matches_scalar(cooling_model, facebook_trace):
    """Default-selection equivalence check: one sampled day, two lanes."""
    combos = [("baseline", NEWARK), (ALL_VERSIONS["All-ND"](), NEWARK)]
    scenarios = [
        LaneScenario(system=system, climate=climate, trace=facebook_trace)
        for system, climate in combos
    ]
    lane_results = run_year_lanes(
        scenarios, model=cooling_model, sample_every_days=366
    )
    for (system, climate), lane_result in zip(combos, lane_results):
        scalar_result = run_year(
            system,
            climate,
            facebook_trace,
            model=cooling_model,
            sample_every_days=366,
        )
        assert_results_identical(lane_result, scalar_result)


@pytest.mark.slow
def test_mixed_four_lane_batch_matches_scalar_elementwise(
    cooling_model, facebook_trace
):
    """2 climates x {baseline, All-ND} in one batch == 4 scalar runs.

    Newark and Chad sit in different temperature regimes, so the CoolAir
    lanes run different bands and the batch mixes free-cooling, closed,
    and AC decisions across lanes on the same epochs.  Every step record
    — inlet temperatures, regime (mode), fan speed, compressor duty,
    energies, humidities — must match its scalar run exactly.
    """
    combos = [
        ("baseline", NEWARK),
        (ALL_VERSIONS["All-ND"](), NEWARK),
        ("baseline", CHAD),
        (ALL_VERSIONS["All-ND"](), CHAD),
    ]
    scenarios = [
        LaneScenario(system=system, climate=climate, trace=facebook_trace)
        for system, climate in combos
    ]
    lane_results = run_year_lanes(
        scenarios,
        model=cooling_model,
        sample_every_days=180,
        keep_traces=True,
    )
    for (system, climate), lane_result in zip(combos, lane_results):
        scalar_result = run_year(
            system,
            climate,
            facebook_trace,
            model=cooling_model,
            sample_every_days=180,
            keep_traces=True,
        )
        assert_results_identical(lane_result, scalar_result)
        lane_traces = lane_result.traces
        scalar_traces = scalar_result.traces
        assert len(lane_traces) == len(scalar_traces)
        for lane_day, scalar_day in zip(lane_traces, scalar_traces):
            assert len(lane_day.records) == len(scalar_day.records)
            for lane_rec, scalar_rec in zip(
                lane_day.records, scalar_day.records
            ):
                assert lane_rec == scalar_rec, (
                    f"step record diverged at t={scalar_rec.time_s} on day "
                    f"{scalar_day.day_of_year} for {scalar_result.label} @ "
                    f"{scalar_result.climate_name}"
                )


def assert_traces_identical(lane_result, scalar_result):
    lane_traces = lane_result.traces
    scalar_traces = scalar_result.traces
    assert len(lane_traces) == len(scalar_traces)
    for lane_day, scalar_day in zip(lane_traces, scalar_traces):
        assert len(lane_day.records) == len(scalar_day.records)
        for lane_rec, scalar_rec in zip(lane_day.records, scalar_day.records):
            assert lane_rec == scalar_rec, (
                f"step record diverged at t={scalar_rec.time_s} on day "
                f"{scalar_day.day_of_year} for {scalar_result.label} @ "
                f"{scalar_result.climate_name}"
            )


PLANTS = ("chiller", "cooling_tower", "hybrid")


def test_plant_lanes_match_scalar_elementwise(cooling_model, facebook_trace):
    """Every non-parasol backend in one batch == its scalar run.

    Three lanes — chiller, cooling_tower, hybrid — at a humid climate
    (so the tower's wet-bulb capacity actually moves and the hybrid
    visits both mechanical regimes), compared down to every step
    record: temperatures, energies, water draw, and the hybrid's
    per-step regime string.
    """
    scenarios = [
        LaneScenario(
            system="baseline",
            climate=SINGAPORE,
            trace=facebook_trace,
            plant=plant,
        )
        for plant in PLANTS
    ]
    lane_results = run_year_lanes(
        scenarios,
        model=cooling_model,
        sample_every_days=366,
        keep_traces=True,
    )
    for plant, lane_result in zip(PLANTS, lane_results):
        scalar_result = run_year(
            "baseline",
            SINGAPORE,
            facebook_trace,
            model=cooling_model,
            sample_every_days=366,
            keep_traces=True,
            plant=plant,
        )
        assert_results_identical(lane_result, scalar_result)
        assert_traces_identical(lane_result, scalar_result)
        assert lane_result.wue == scalar_result.wue


@pytest.mark.slow
def test_plant_lanes_match_scalar_with_coolair(cooling_model, facebook_trace):
    """CoolAir plant lanes (optimizer in the loop) == scalar, per backend."""
    for plant in PLANTS:
        (lane_result,) = run_year_lanes(
            [
                LaneScenario(
                    system=ALL_VERSIONS["All-ND"](),
                    climate=NEWARK,
                    trace=facebook_trace,
                    plant=plant,
                )
            ],
            model=cooling_model,
            sample_every_days=180,
            keep_traces=True,
        )
        scalar_result = run_year(
            ALL_VERSIONS["All-ND"](),
            NEWARK,
            facebook_trace,
            model=cooling_model,
            sample_every_days=180,
            keep_traces=True,
            plant=plant,
        )
        assert_results_identical(lane_result, scalar_result)
        assert_traces_identical(lane_result, scalar_result)


def test_plant_day_unfolding_matches_scalar(cooling_model, facebook_trace):
    """Plant cells ride day-unfolding too: unfolded year == scalar year."""
    for plant in ("cooling_tower", "hybrid"):
        scenario = LaneScenario(
            system="baseline",
            climate=SINGAPORE,
            trace=facebook_trace,
            plant=plant,
        )
        unfolded = run_year_unfolded(
            scenario, 2, model=cooling_model, sample_every_days=180
        )
        scalar_result = run_year(
            "baseline",
            SINGAPORE,
            facebook_trace,
            model=cooling_model,
            sample_every_days=180,
            plant=plant,
        )
        assert_results_identical(unfolded, scalar_result)


def test_lane_results_independent_of_batch_grouping(
    cooling_model, facebook_trace
):
    """A lane's results don't depend on which other lanes share its batch.

    This is what lets the campaign runner regroup cells into arbitrary
    worker x lane chunks without changing any result.
    """
    solo = run_year_lanes(
        [LaneScenario(system="baseline", climate=CHAD, trace=facebook_trace)],
        model=cooling_model,
        sample_every_days=366,
    )[0]
    batched = run_year_lanes(
        [
            LaneScenario(
                system=ALL_VERSIONS["All-ND"](),
                climate=NEWARK,
                trace=facebook_trace,
            ),
            LaneScenario(
                system="baseline", climate=CHAD, trace=facebook_trace
            ),
        ],
        model=cooling_model,
        sample_every_days=366,
    )[1]
    assert dataclasses.asdict(solo) == dataclasses.asdict(batched)


class TestLaneTKSMaskSwitching:
    """Lanes flipping TKS mode on different epochs (mask handling)."""

    def test_lanes_latch_hot_mode_independently(self):
        from repro.cooling.tks import (
            LANE_CMD_AC_FAN,
            LANE_CMD_AC_ON,
            LANE_CMD_FREE_COOLING,
            LaneTKSController,
            TKSController,
        )

        lanes = LaneTKSController(num_lanes=3)
        scalars = [TKSController() for _ in range(3)]
        # Three lanes see diverging outside temperatures: lane 0 stays
        # cool (never enters HOT), lane 1 crosses the setpoint early,
        # lane 2 crosses it one epoch later — so the HOT latch flips on
        # different epochs for different lanes.
        control = [24.0, 27.5, 27.5]
        outside_by_epoch = [
            [15.0, 20.0, 22.0],
            [15.0, 31.0, 24.0],
            [15.0, 28.0, 31.0],
            [15.0, 20.0, 20.0],
        ]
        for outside in outside_by_epoch:
            codes, speeds = lanes.decide(
                np.array(control), np.array(outside)
            )
            for lane in range(3):
                command = scalars[lane].decide(control[lane], outside[lane])
                expected_hot = scalars[lane].in_hot_mode
                assert bool(lanes.in_hot_mode[lane]) == expected_hot
                if expected_hot:
                    expected_code = (
                        LANE_CMD_AC_ON
                        if command.ac_compressor_duty >= 1.0
                        else LANE_CMD_AC_FAN
                    )
                    assert codes[lane] == expected_code
                else:
                    assert codes[lane] == LANE_CMD_FREE_COOLING
                    assert speeds[lane] == command.fc_fan_speed

    def test_hysteresis_masks_are_disjoint_per_epoch(self):
        from repro.cooling.tks import LaneTKSController

        lanes = LaneTKSController(num_lanes=2)
        # Both lanes sit exactly at the re-entry edge after leaving HOT
        # mode: a lane that just left HOT must not re-enter on the same
        # decision (the scalar controller's elif).
        lanes.decide(np.array([27.0, 27.0]), np.array([31.0, 31.0]))
        assert lanes.in_hot_mode.tolist() == [True, True]
        # Lane 0 drops below SP-h (leaves HOT), lane 1 stays hot.
        lanes.decide(np.array([27.0, 27.0]), np.array([20.0, 31.0]))
        assert lanes.in_hot_mode.tolist() == [False, True]
