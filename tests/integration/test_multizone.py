"""Multi-zone datacenter tests (Section 6 scaling)."""

import pytest

from repro.core.versions import all_nd
from repro.errors import ConfigError, SimulationError
from repro.sim.multizone import (
    FleetDayResult,
    MultiZoneDatacenter,
    ZoneDayResult,
    partition_trace,
)
from repro.sim.trace import DayTrace
from repro.weather.locations import NEWARK


class TestPartition:
    def test_round_robin_counts(self, facebook_trace):
        zones = partition_trace(facebook_trace, 3)
        sizes = [len(z) for z in zones]
        assert sum(sizes) == len(facebook_trace)
        assert max(sizes) - min(sizes) <= 1

    def test_arrival_order_preserved(self, facebook_trace):
        zones = partition_trace(facebook_trace, 4)
        for zone in zones:
            arrivals = [j.arrival_s for j in zone.jobs]
            assert arrivals == sorted(arrivals)

    def test_single_zone_is_identity(self, facebook_trace):
        zones = partition_trace(facebook_trace, 1)
        assert len(zones[0]) == len(facebook_trace)

    def test_validation(self, facebook_trace):
        with pytest.raises(ConfigError):
            partition_trace(facebook_trace, 0)


class TestMultiZoneRuns:
    def test_coolair_fleet_day(self, facebook_trace, cooling_model):
        fleet = MultiZoneDatacenter(
            NEWARK, facebook_trace, num_zones=2, system=all_nd(),
            model=cooling_model,
        )
        result = fleet.run_day(182)
        assert len(result.zones) == 2
        assert result.worst_zone_range_c > 0
        assert 1.08 <= result.fleet_pue() < 1.6

    def test_baseline_fleet_day(self, facebook_trace):
        fleet = MultiZoneDatacenter(
            NEWARK, facebook_trace, num_zones=2, system="baseline"
        )
        result = fleet.run_day(182)
        assert result.cooling_kwh >= 0
        assert result.zone_spread_c() >= 0

    def test_zones_share_weather_but_manage_independently(
        self, facebook_trace, cooling_model
    ):
        fleet = MultiZoneDatacenter(
            NEWARK, facebook_trace, num_zones=3, system=all_nd(),
            model=cooling_model,
        )
        result = fleet.run_day(100)
        outsides = [z.trace.outside_temps()[0] for z in result.zones]
        assert max(outsides) - min(outsides) < 0.6  # same site weather
        # Independent managers: per-zone IT power differs with the split.
        it = [z.trace.it_energy_kwh() for z in result.zones]
        assert all(v > 0 for v in it)

    def test_coolair_requires_model(self, facebook_trace):
        with pytest.raises(ConfigError):
            MultiZoneDatacenter(
                NEWARK, facebook_trace, num_zones=2, system=all_nd(), model=None
            )

    def test_unknown_system_rejected(self, facebook_trace):
        with pytest.raises(ConfigError):
            MultiZoneDatacenter(
                NEWARK, facebook_trace, num_zones=2, system="magic"
            )


class TestPueAccounting:
    """fleet_pue and DayTrace.pue share one overhead constant and one
    zero-IT failure mode (they drifted apart once; these pin the fix)."""

    def test_single_zone_fleet_pue_equals_trace_pue(self, facebook_trace):
        fleet = MultiZoneDatacenter(
            NEWARK, facebook_trace, num_zones=1, system="baseline"
        )
        result = fleet.run_day(182)
        assert result.fleet_pue() == pytest.approx(
            result.zones[0].trace.pue()
        )

    def test_overhead_constant_is_shared(self, facebook_trace):
        from repro import constants

        fleet = MultiZoneDatacenter(
            NEWARK, facebook_trace, num_zones=1, system="baseline"
        )
        result = fleet.run_day(182)
        # Zeroing the overhead shifts both accountings by exactly the
        # constant: neither side hardcodes its own copy.
        delta = constants.POWER_DELIVERY_PUE_OVERHEAD
        assert result.fleet_pue(delivery_overhead=0.0) == pytest.approx(
            result.fleet_pue() - delta
        )
        assert result.zones[0].trace.pue(delivery_overhead=0.0) == (
            pytest.approx(result.zones[0].trace.pue() - delta)
        )

    def test_zero_it_raises_simulation_error_everywhere(self):
        empty = FleetDayResult(zones=[ZoneDayResult(0, DayTrace(day_of_year=1))])
        with pytest.raises(SimulationError):
            empty.fleet_pue()
        with pytest.raises(SimulationError):
            empty.fleet_wue()
        with pytest.raises(SimulationError):
            DayTrace(day_of_year=1).pue()
        with pytest.raises(SimulationError):
            DayTrace(day_of_year=1).wue()
