"""Full-day performance regression: the batched optimizer must beat the
sequential reference path — and produce the identical trajectory.

Marked ``slow`` (wall-clock-sensitive): it simulates the benchmark day
twice.  The equality assertion is the strong claim (batching is a pure
speedup, not an approximation); the timing assertion guards against the
fast path silently degenerating into the reference path.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.profiling import BENCH_DAY, BENCH_LOCATION, BENCH_SYSTEM
from repro.core.coolair import CoolAir
from repro.core.versions import ALL_VERSIONS
from repro.sim.engine import CoolAirAdapter, DayRunner, ProfileWorkload, make_smoothsim
from repro.weather.locations import NAMED_LOCATIONS
from repro.workload.traces import FacebookTraceGenerator


def run_day(cooling_model, trace, use_batched):
    setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
    config = ALL_VERSIONS[BENCH_SYSTEM]()
    coolair = CoolAir(
        config, cooling_model, setup.layout, setup.forecast, smooth_hardware=True
    )
    coolair.optimizer.use_batched = use_batched
    runner = DayRunner(
        setup, ProfileWorkload(trace, setup.layout, 600.0), CoolAirAdapter(coolair)
    )
    start = time.perf_counter()
    day = runner.run_day(BENCH_DAY)
    return day, time.perf_counter() - start


@pytest.mark.slow
def test_batched_day_matches_reference_and_is_faster(cooling_model):
    trace = FacebookTraceGenerator(num_jobs=400, seed=42).generate()
    batched_day, batched_s = run_day(cooling_model, trace, use_batched=True)
    reference_day, reference_s = run_day(cooling_model, trace, use_batched=False)

    assert len(batched_day.records) == len(reference_day.records)
    for got, want in zip(batched_day.records, reference_day.records):
        assert got.mode is want.mode
        assert got.fc_fan_speed == want.fc_fan_speed
        assert list(got.sensor_temps_c) == list(want.sensor_temps_c)
        assert got.cooling_power_w == want.cooling_power_w
        assert got.inside_rh_pct == want.inside_rh_pct

    # The tracked benchmark shows >3x; even on a loaded CI machine the
    # batched path must not lose to the per-candidate reference.
    assert batched_s < reference_s
