"""Block-layout-driven Covering Subset integrated with the Compute Manager.

Shows the full Section 4.2 story end-to-end: HDFS lays blocks out across
pods, the covering subset is derived from the real layout, the Compute
Configurer honors it, and data stays available through aggressive
power-state churn.
"""

import pytest

from repro.core.compute import ComputeConfigurer, ComputeOptimizer
from repro.core.versions import all_nd
from repro.datacenter.layout import parasol_layout
from repro.datacenter.server import PowerState
from repro.workload.hdfs import place_dataset


@pytest.fixture()
def cluster_with_data():
    layout = parasol_layout()
    namespace = place_dataset(dataset_gb=8.0, num_servers=64, servers_per_pod=16)
    namespace.mark_covering_subset(layout.all_servers())
    return layout, namespace


class TestBlockDrivenCoveringSubset:
    def test_subset_spans_pods(self, cluster_with_data):
        layout, namespace = cluster_with_data
        subset_pods = {
            s.pod_id for s in layout.all_servers() if s.in_covering_subset
        }
        # Off-rack replication means the greedy cover draws from several pods.
        assert len(subset_pods) >= 2

    def test_configurer_preserves_availability_under_min_demand(
        self, cluster_with_data
    ):
        layout, namespace = cluster_with_data
        optimizer = ComputeOptimizer(all_nd(), layout)
        configurer = ComputeConfigurer(layout)
        active = optimizer.plan_active_set(0)  # no workload at all
        configurer.apply(active)
        powered = {
            s.server_id for s in layout.all_servers() if s.is_on
        }
        assert namespace.available(powered)

    def test_availability_through_demand_churn(self, cluster_with_data):
        layout, namespace = cluster_with_data
        optimizer = ComputeOptimizer(all_nd(), layout)
        configurer = ComputeConfigurer(layout)
        for demand in (64, 4, 40, 0, 16, 64, 8):
            configurer.apply(optimizer.plan_active_set(demand))
            powered = {s.server_id for s in layout.all_servers() if s.is_on}
            assert namespace.available(powered), f"data lost at demand={demand}"

    def test_sleeping_non_subset_servers_is_safe(self, cluster_with_data):
        layout, namespace = cluster_with_data
        for server in layout.all_servers():
            if not server.in_covering_subset:
                server.holds_job_data = False
                server.sleep()
        powered = {s.server_id for s in layout.all_servers() if s.is_on}
        assert namespace.available(powered)
        assert len(powered) < 64

    def test_block_subset_smaller_than_heuristic(self, cluster_with_data):
        """The greedy block cover should not need more servers than the
        naive capacity heuristic assumes, for a modest dataset."""
        layout, namespace = cluster_with_data
        subset_size = sum(
            1 for s in layout.all_servers() if s.in_covering_subset
        )
        assert 1 <= subset_size <= 32
