"""End-to-end fault injection and graceful degradation.

The acceptance contract (docs/ROBUSTNESS.md): every built-in scenario
runs a full day under CoolAir without an unhandled exception and spends
at least one interval under safe-mode control; same-seed runs are
bit-identical; and an *empty* fault schedule leaves the simulation
bit-identical to a fault-free run, so the golden-fixture tests keep
pinning the unfaulted trajectory.
"""

import dataclasses

import pytest

from repro.core.coolair import CoolAir
from repro.core.versions import all_nd
from repro.faults import BUILTIN_SCENARIOS, FaultSchedule, builtin_scenario
from repro.sim.campaign import trained_cooling_model
from repro.sim.engine import (
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
    make_smoothsim,
)
from repro.weather.locations import NEWARK
from repro.workload.traces import FacebookTraceGenerator

DAY = 182


def run_faulted_day(schedule, trace, day=DAY):
    """One smooth-hardware CoolAir day under a fault schedule."""
    config = dataclasses.replace(all_nd(), faults=schedule)
    setup = make_smoothsim(NEWARK, faults=schedule)
    model = trained_cooling_model(
        log_gaps=schedule.log_gaps if schedule is not None else ()
    )
    coolair = CoolAir(
        config, model, setup.layout, setup.forecast,
        smooth_hardware=setup.smooth_hardware,
    )
    runner = DayRunner(
        setup, ProfileWorkload(trace, setup.layout, 600.0),
        CoolAirAdapter(coolair),
    )
    return runner.run_day(day)


class TestSafeModeSmoke:
    """The CI fault-suite smoke: a faulted day ends in safe mode."""

    def test_inlet_dropout_falls_back_to_safe_mode(self, facebook_trace):
        day = run_faulted_day(
            builtin_scenario("inlet-dropout"), facebook_trace
        )
        assert len(day) == 720  # the full day completed
        assert day.degraded_fraction() > 0.0
        assert len(day.degradation_intervals()) >= 1
        # Safe mode still controls temperature: TKS plus the humidity
        # override keep the container out of thermal runaway.
        assert day.max_sensor_temp_c() < 36.0


class TestEveryScenario:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_scenario_completes_a_day_and_degrades(
        self, name, facebook_trace
    ):
        day = run_faulted_day(builtin_scenario(name), facebook_trace)
        assert len(day) == 720
        assert len(day.degradation_intervals()) >= 1, (
            f"scenario {name} never entered safe mode"
        )

    def test_same_seed_runs_are_bit_identical(self, facebook_trace):
        # sensor-spike draws from the channel RNG every reading, so it is
        # the scenario most exposed to nondeterminism.
        a = run_faulted_day(builtin_scenario("sensor-spike"), facebook_trace)
        b = run_faulted_day(builtin_scenario("sensor-spike"), facebook_trace)
        assert len(a) == len(b)
        for got, want in zip(a.records, b.records):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_different_seed_changes_a_spiky_run(self, facebook_trace):
        base = builtin_scenario("sensor-spike")
        a = run_faulted_day(base, facebook_trace)
        b = run_faulted_day(
            dataclasses.replace(base, seed=base.seed + 1), facebook_trace
        )
        assert any(
            dataclasses.asdict(x) != dataclasses.asdict(y)
            for x, y in zip(a.records, b.records)
        )


class TestEmptyScheduleEquivalence:
    """An empty FaultSchedule must not perturb the simulation at all.

    The golden-fixture tests (test_engine_golden / test_plant_golden) pin
    the absolute trajectory; this pins the *relative* contract that
    attaching an empty schedule is a no-op, step for step.
    """

    def test_empty_schedule_day_is_bit_identical(self):
        # A short trace keeps this fast; bit-identity is per-step anyway.
        trace = FacebookTraceGenerator(num_jobs=120, seed=7).generate()
        plain = run_faulted_day(None, trace)
        empty = run_faulted_day(FaultSchedule(), trace)
        assert len(plain) == len(empty) == 720
        for got, want in zip(empty.records, plain.records):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_empty_schedule_year_matches_fault_free_year(self, cooling_model):
        from repro.sim.yearsim import run_year
        from repro.workload.traces import NutchTraceGenerator

        trace = NutchTraceGenerator(num_jobs=200, seed=5).generate()
        plain = run_year(
            all_nd(), NEWARK, trace, model=cooling_model,
            sample_every_days=180,
        )
        faulted = run_year(
            dataclasses.replace(all_nd(), faults=FaultSchedule()),
            NEWARK, trace, model=cooling_model, sample_every_days=180,
        )
        assert dataclasses.asdict(plain) == dataclasses.asdict(faulted)
