"""End-to-end parallel harness checks with real simulations.

Serial and parallel campaign runs must be bit-identical (the simulations
are deterministic and the pool only changes *where* each cell runs), and
on a multi-core machine a cold-cache parallel run must beat the serial
one on wall-clock.
"""

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.analysis import experiments
from repro.analysis.runner import YearTask, run_year_tasks
from repro.weather.locations import NAMED_LOCATIONS

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="workers must inherit the monkeypatched cache directory",
)

# Two sampled days per year keeps each cell ~0.5 s.
FAST_STRIDE = 183


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(experiments, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(experiments, "_memory_cache", {})
    return monkeypatch


@fork_only
def test_five_location_matrix_parallel_equals_serial(fresh_caches):
    serial = experiments.five_location_matrix(
        systems=("baseline",), sample_every_days=FAST_STRIDE, workers=1
    )
    fresh_caches.setattr(experiments, "_memory_cache", {})
    fresh_caches.setattr(
        experiments, "CACHE_DIR", experiments.CACHE_DIR.parent / "cache2"
    )
    parallel = experiments.five_location_matrix(
        systems=("baseline",), sample_every_days=FAST_STRIDE, workers=4
    )
    assert set(serial) == set(parallel) == {"baseline"}
    for name in NAMED_LOCATIONS:
        assert dataclasses.asdict(serial["baseline"][name]) == (
            dataclasses.asdict(parallel["baseline"][name])
        )


@pytest.mark.slow
@fork_only
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="speedup needs at least 2 CPUs"
)
def test_cold_cache_parallel_run_is_faster(fresh_caches):
    tasks = [
        YearTask("baseline", climate, sample_every_days=FAST_STRIDE)
        for climate in NAMED_LOCATIONS.values()
    ]
    start = time.perf_counter()
    run_year_tasks(tasks, workers=1, use_disk_cache=False)
    serial_s = time.perf_counter() - start

    fresh_caches.setattr(experiments, "_memory_cache", {})
    workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    run_year_tasks(tasks, workers=workers, use_disk_cache=False)
    parallel_s = time.perf_counter() - start

    assert parallel_s < serial_s * 0.9, (
        f"parallel ({workers} workers) took {parallel_s:.2f}s vs "
        f"serial {serial_s:.2f}s"
    )
