"""Year-scale shape assertions: who wins, and by roughly what factor.

These tests use a coarse day stride (every ~8 weeks) so they stay fast;
the benchmarks run the paper's weekly sampling.
"""

import pytest

from repro.core.versions import all_nd, energy_version, variation_version
from repro.sim.yearsim import run_year, sampled_days
from repro.weather.locations import ICELAND, NEWARK, SINGAPORE

STRIDE = 56  # 7 sampled days per year


@pytest.fixture(scope="module")
def newark_baseline(facebook_trace):
    return run_year("baseline", NEWARK, facebook_trace, sample_every_days=STRIDE)


@pytest.fixture(scope="module")
def newark_all_nd(facebook_trace, cooling_model):
    return run_year(
        all_nd(), NEWARK, facebook_trace, model=cooling_model,
        sample_every_days=STRIDE,
    )


class TestSampling:
    def test_weekly_sampling_counts(self):
        assert len(sampled_days(7)) == 53
        assert sampled_days(7)[0] == 0

    def test_unknown_system_rejected(self, facebook_trace):
        with pytest.raises(Exception):
            run_year("nonsense", NEWARK, facebook_trace)


class TestNewarkShape:
    def test_all_nd_cuts_variation(self, newark_baseline, newark_all_nd):
        """The headline Figure 9 result: CoolAir cuts Newark's daily
        variation substantially.  The coarse 8-week sampling here makes
        the *max* statistic noisy, so the robust assertion is on the
        average, with the max merely not worse."""
        assert newark_all_nd.avg_range_c < 0.7 * newark_baseline.avg_range_c
        assert newark_all_nd.max_range_c <= newark_baseline.max_range_c

    def test_violations_near_zero(self, newark_baseline, newark_all_nd):
        assert newark_all_nd.avg_violation_c < 0.5
        assert newark_baseline.avg_violation_c < 1.0  # Newark is mild

    def test_pue_in_plausible_range(self, newark_baseline, newark_all_nd):
        assert 1.08 <= newark_baseline.pue < 1.4
        assert 1.08 <= newark_all_nd.pue < 1.5

    def test_variation_management_costs_energy(
        self, facebook_trace, cooling_model, newark_baseline
    ):
        """Section 5.2: 'managing temperature variation incurs a
        substantial cooling energy penalty' (relative to Energy)."""
        energy = run_year(
            energy_version(), NEWARK, facebook_trace, model=cooling_model,
            sample_every_days=STRIDE,
        )
        variation = run_year(
            variation_version(), NEWARK, facebook_trace, model=cooling_model,
            sample_every_days=STRIDE,
        )
        assert variation.cooling_kwh > energy.cooling_kwh
        assert variation.max_range_c < energy.max_range_c


class TestClimateContrast:
    def test_singapore_baseline_pue_higher_than_iceland(self, facebook_trace):
        singapore = run_year(
            "baseline", SINGAPORE, facebook_trace, sample_every_days=STRIDE
        )
        iceland = run_year(
            "baseline", ICELAND, facebook_trace, sample_every_days=STRIDE
        )
        assert singapore.pue > iceland.pue

    def test_outside_ranges_recorded(self, newark_baseline):
        assert newark_baseline.max_outside_range_c > newark_baseline.avg_outside_range_c > 0


class TestResultPlumbing:
    def test_summary_row_readable(self, newark_baseline):
        row = newark_baseline.summary_row()
        assert "Baseline" in row and "Newark" in row and "PUE" in row

    def test_forecast_bias_plumbs_through(self, facebook_trace, cooling_model):
        biased = run_year(
            all_nd(), NEWARK, facebook_trace, model=cooling_model,
            sample_every_days=182, forecast_bias_c=5.0,
        )
        assert biased.cooling_kwh >= 0.0  # runs to completion

    def test_trace_not_mutated_by_deferral(self, facebook_trace, cooling_model):
        from repro.core.versions import all_def

        trace = facebook_trace.deferrable_copy()
        run_year(
            all_def(), NEWARK, trace, model=cooling_model, sample_every_days=182
        )
        # run_year deep-copies: the caller's jobs keep pristine schedules.
        assert all(job.scheduled_start_s is None for job in trace.jobs)
