"""YearResult bookkeeping details."""

import pytest

from repro.core.versions import all_nd
from repro.sim.yearsim import run_year, sampled_days
from repro.weather.locations import NEWARK


class TestKeepTraces:
    def test_traces_attached_when_requested(self, facebook_trace, cooling_model):
        result = run_year(
            all_nd(), NEWARK, facebook_trace, model=cooling_model,
            sample_every_days=182, keep_traces=True,
        )
        assert len(result.traces) == len(result.sampled_days)
        assert all(len(t) == 720 for t in result.traces)

    def test_traces_none_by_default(self, facebook_trace):
        result = run_year(
            "baseline", NEWARK, facebook_trace, sample_every_days=182
        )
        assert result.traces is None


class TestSampledDays:
    def test_rejects_non_positive_stride(self):
        from repro.errors import ConfigError

        for bad in (0, -7):
            with pytest.raises(ConfigError):
                sampled_days(bad)

    def test_weekly_stride_starts_at_day_zero(self):
        days = sampled_days(7)
        assert days[0] == 0
        assert all(b - a == 7 for a, b in zip(days, days[1:]))


class TestPerDaySeries:
    @pytest.fixture(scope="class")
    def result(self, facebook_trace):
        return run_year(
            "baseline", NEWARK, facebook_trace, sample_every_days=91
        )

    def test_series_lengths_match_days(self, result):
        n = len(result.sampled_days)
        assert len(result.daily_worst_range_c) == n
        assert len(result.daily_outside_range_c) == n
        assert len(result.daily_avg_violation_c) == n
        assert len(result.daily_max_rate_c_per_hour) == n

    def test_min_max_bracket_avg(self, result):
        assert (
            result.min_range_c
            <= result.avg_range_c
            <= result.max_range_c
        )

    def test_energy_positive(self, result):
        assert result.it_kwh > 0
        assert result.cooling_kwh >= 0

    def test_labels(self, result):
        assert result.label == "Baseline"
        assert result.climate_name == "Newark"


class TestSampling:
    def test_stride_one_covers_year(self):
        assert len(sampled_days(1)) == 365

    def test_paper_stride(self):
        days = sampled_days(7)
        assert days[1] - days[0] == 7
        assert days[-1] <= 364
