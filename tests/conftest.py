"""Shared fixtures.

The trained cooling model and workload traces are expensive relative to a
unit test, so they are session-scoped and shared.
"""

from __future__ import annotations

import pytest

from repro.datacenter.layout import parasol_layout
from repro.sim.campaign import trained_cooling_model
from repro.workload.traces import FacebookTraceGenerator, NutchTraceGenerator


@pytest.fixture(scope="session")
def cooling_model():
    """The Cooling Model learned from the default campaign."""
    return trained_cooling_model()


@pytest.fixture(scope="session")
def facebook_trace():
    """A small (fast) Facebook-style trace."""
    return FacebookTraceGenerator(num_jobs=400, seed=42).generate()


@pytest.fixture(scope="session")
def nutch_trace():
    return NutchTraceGenerator(num_jobs=400, seed=43).generate()


@pytest.fixture()
def layout():
    """A fresh Parasol layout (mutable per test)."""
    return parasol_layout()
