#!/usr/bin/env python3
"""Verify every documented CLI invocation parses against the real parser.

Scans the README and ``docs/*.md`` for ``python -m repro ...`` command
lines, strips shell decorations, and runs each through
``repro.cli.build_parser()``.  A renamed flag, removed subcommand, or
stale example fails CI instead of silently rotting in the docs.  Also
checks that the dispatch table, the ``--help`` epilog catalogue, and the
README command table agree on the set of subcommands.
"""

import contextlib
import io
import pathlib
import re
import shlex
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import COMMAND_SUMMARIES, COMMANDS, build_parser  # noqa: E402

COMMAND_RE = re.compile(r"python -m repro\s+([^\n`]+)")
SHELL_OPERATORS = {"|", "||", "&&", "&", ";", ">", ">>", "<"}


def doc_files():
    yield ROOT / "README.md"
    yield from sorted((ROOT / "docs").glob("*.md"))


PLACEHOLDER_RE = re.compile(r"^(<.*>|[A-Z][A-Z_-]*)$")


def extract_commands(text):
    for match in COMMAND_RE.finditer(text):
        tokens = shlex.split(match.group(1))
        if "..." in tokens:
            continue  # elided example, nothing concrete to parse
        clean = []
        for token in tokens:
            if token in SHELL_OPERATORS or token.startswith("#"):
                break
            if PLACEHOLDER_RE.match(token):
                # `--faults NAME`-style placeholder: drop the pair; the
                # remaining tokens still prove the subcommand and flags.
                if clean and clean[-1].startswith("--"):
                    clean.pop()
                continue
            clean.append(token)
        if clean:
            yield clean


def parses(tokens):
    parser = build_parser()
    try:
        with contextlib.redirect_stderr(io.StringIO()):
            parser.parse_args(tokens)
    except SystemExit as exit_:
        return exit_.code == 0  # --help exits 0 and still proves the flags
    return True


def main():
    errors = []
    total = 0
    for path in doc_files():
        rel = path.relative_to(ROOT)
        for tokens in extract_commands(path.read_text()):
            total += 1
            if tokens[0] not in COMMANDS:
                errors.append(
                    f"{rel}: unknown subcommand in `python -m repro "
                    f"{' '.join(tokens)}`"
                )
            elif not parses(tokens):
                errors.append(
                    f"{rel}: does not parse: `python -m repro "
                    f"{' '.join(tokens)}`"
                )
    if total == 0:
        errors.append("no documented `python -m repro` commands found at all")

    if set(COMMAND_SUMMARIES) != set(COMMANDS):
        errors.append(
            "COMMAND_SUMMARIES and COMMANDS disagree: "
            f"{set(COMMAND_SUMMARIES) ^ set(COMMANDS)}"
        )
    readme = (ROOT / "README.md").read_text()
    for name in COMMANDS:
        if not re.search(rf"`(?:python -m repro |coolair )?{name}[` ]", readme):
            errors.append(f"README.md: command table is missing `{name}`")

    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if errors:
        return 1
    print(f"doc commands OK: {total} documented invocations parse")
    return 0


if __name__ == "__main__":
    sys.exit(main())
