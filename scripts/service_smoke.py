#!/usr/bin/env python3
"""CI smoke: a service-run campaign must equal the one-shot CLI run.

Starts ``python -m repro serve`` as a real subprocess, submits a tiny
matrix campaign through ``python -m repro submit``, polls ``status``,
and diffs the result rows against the same campaign run one-shot.  The
two runs use separate cache directories, so equality is computed twice
from scratch — never inherited through a shared cache.

Also the CI exercise path for the service env knobs: the server reads
``REPRO_SERVICE_SOCKET`` / ``REPRO_SERVICE_MAX_INFLIGHT`` /
``REPRO_SERVICE_MAX_JOBS`` and the client ``REPRO_SERVICE_SOCKET`` /
``REPRO_SERVICE_CONNECT_TIMEOUT_S`` from the environment below
(``REPRO_SERVICE_HOST``/``_PORT`` are covered by the integration suite).
"""

import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
STRIDE = "183"  # two sampled days per year: ~0.5 s per cell
CAMPAIGN = ["--systems", "baseline", "--sample-days", STRIDE, "--quiet"]


def run_cli(args, env, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def fail(step, proc):
    print(f"FAIL: {step} (exit {proc.returncode})", file=sys.stderr)
    print(proc.stdout, file=sys.stderr)
    print(proc.stderr, file=sys.stderr)
    return 1


def data_rows(table):
    """The per-cell rows of a matrix table, whitespace-normalized.

    The one-shot and service tables differ in title and row order (cells
    finish in completion order), never in content.
    """
    rows = [
        line.strip()
        for line in table.splitlines()
        if line.startswith("baseline")
    ]
    return sorted(re.sub(r"\s+\|\s+", " | ", row) for row in rows)


def main():
    base_env = dict(os.environ)
    base_env["PYTHONPATH"] = str(ROOT / "src")
    with tempfile.TemporaryDirectory() as tmp:
        direct_env = {**base_env, "REPRO_CACHE_DIR": f"{tmp}/direct-cache"}
        direct = run_cli(
            ["matrix", *CAMPAIGN, "--workers", "2"], direct_env
        )
        if direct.returncode:
            return fail("one-shot matrix", direct)

        socket_path = f"{tmp}/service.sock"
        service_env = {
            **base_env,
            "REPRO_CACHE_DIR": f"{tmp}/service-cache",
            "REPRO_SERVICE_SOCKET": socket_path,
            "REPRO_SERVICE_MAX_INFLIGHT": "2",
            "REPRO_SERVICE_MAX_JOBS": "4",
            "REPRO_SERVICE_CONNECT_TIMEOUT_S": "30",
        }
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "2"],
            env=service_env,
            cwd=ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(socket_path):
                if server.poll() is not None or time.monotonic() > deadline:
                    out = server.stdout.read() if server.stdout else ""
                    print(f"FAIL: server never bound\n{out}", file=sys.stderr)
                    return 1
                time.sleep(0.2)

            submit = run_cli(["submit", "matrix", *CAMPAIGN], service_env)
            if submit.returncode:
                return fail("service submit", submit)

            status = run_cli(["status"], service_env)
            if status.returncode:
                return fail("service status", status)
            if "completed" not in status.stdout:
                print(
                    f"FAIL: job not completed in status:\n{status.stdout}",
                    file=sys.stderr,
                )
                return 1
        finally:
            server.terminate()
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()

    expected = data_rows(direct.stdout)
    got = data_rows(submit.stdout)
    if not expected or expected != got:
        print("FAIL: service result differs from the one-shot run", file=sys.stderr)
        print(f"one-shot:\n{direct.stdout}", file=sys.stderr)
        print(f"service:\n{submit.stdout}", file=sys.stderr)
        return 1
    print(f"service smoke OK: {len(expected)} cells match the one-shot run")
    print(status.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
